//! A UDP overlay node: the sans-I/O core + a tokio event loop.
//!
//! The driver owns everything the core deliberately does not: the socket,
//! the address books (peer ⇄ addr, client ⇄ addr), the timer wheel, and
//! the command channel. Datagrams are routed into the core by source
//! address — peer addresses through [`OverlayNode::on_datagram`], attached
//! client addresses through [`OverlayNode::on_client_datagram`] (so client
//! RTCP feedback drives cc and loss recovery on the wire exactly as in the
//! emulator), and unknown sources are dropped and counted.

use crate::clock::WallClock;
use crate::telemetry::SharedTelemetry;
use bytes::Bytes;
use livenet_media::{EncodedFrame, SimulcastLadder};
use livenet_node::{NodeAction, NodeConfig, NodeEvent, OverlayNode, Subscriber, TimerKind};
use livenet_telemetry::{ids, MetricSink, Span};
use livenet_types::{Bandwidth, ClientId, NodeId, SimDuration, SimTime, StreamId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::SocketAddr;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

/// The UDP payload ceiling: receive buffers never need to exceed this,
/// whatever `NodeConfig::max_datagram_bytes` says.
const MAX_UDP_DATAGRAM: usize = 64 * 1024;

/// Commands accepted by a running node.
#[derive(Debug)]
pub enum NodeCommand {
    /// Declare this node the producer of a stream.
    RegisterProducer {
        /// The stream.
        stream: StreamId,
        /// Optional simulcast ladder for consumer-side selection.
        ladder: Option<SimulcastLadder>,
    },
    /// Ingest one encoded frame from a local broadcaster.
    Ingest {
        /// Frame metadata.
        frame: EncodedFrame,
        /// Encoded payload.
        payload: Bytes,
    },
    /// Register a peer overlay node's address.
    AddPeer {
        /// Peer id.
        node: NodeId,
        /// Peer socket address.
        addr: SocketAddr,
        /// RTT hint for the delay field.
        rtt: SimDuration,
    },
    /// Attach a viewer client (delivery over UDP to `addr`).
    ClientAttach {
        /// Client id.
        client: ClientId,
        /// Requested stream.
        stream: StreamId,
        /// Estimated downlink.
        downlink: Option<Bandwidth>,
        /// Producer-first path for reverse subscription (None = local hit
        /// expected).
        path: Option<Vec<NodeId>>,
        /// Where to send the client's packets — and where its RTCP
        /// feedback will come from.
        addr: SocketAddr,
    },
    /// Detach a viewer.
    ClientDetach {
        /// Client id.
        client: ClientId,
    },
    /// Stop the event loop.
    Shutdown,
}

/// Error returned by [`NodeHandle::send`] when the node task has exited
/// (shut down, panicked, or been aborted) and the command channel closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeGone;

impl std::fmt::Display for NodeGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "overlay node task has exited")
    }
}

impl std::error::Error for NodeGone {}

/// Handle to a spawned node.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    tx: mpsc::Sender<NodeCommand>,
    /// The node's bound socket address.
    pub addr: SocketAddr,
    /// The node's overlay id.
    pub id: NodeId,
}

impl NodeHandle {
    /// Send a command to the node's event loop. Errors (instead of
    /// panicking) when the task is gone, so shutdown races — a command
    /// sent while the node is draining — stay recoverable.
    pub async fn send(&self, cmd: NodeCommand) -> Result<(), NodeGone> {
        self.tx.send(cmd).await.map_err(|_| NodeGone)
    }
}

/// The tokio driver around one [`OverlayNode`].
pub struct UdpOverlayNode {
    core: OverlayNode,
    socket: UdpSocket,
    clock: WallClock,
    peers: HashMap<NodeId, SocketAddr>,
    peer_of_addr: HashMap<SocketAddr, NodeId>,
    clients: HashMap<ClientId, SocketAddr>,
    client_of_addr: HashMap<SocketAddr, ClientId>,
    /// Pending timers as `(deadline, key, generation)`. A popped entry
    /// whose generation no longer matches `timer_gen[key]` was cancelled
    /// and is skipped instead of fired.
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    timer_gen: HashMap<u64, u64>,
    /// Receive buffer capacity (from `NodeConfig::max_datagram_bytes`,
    /// capped at [`MAX_UDP_DATAGRAM`]).
    recv_cap: usize,
    rx: mpsc::Receiver<NodeCommand>,
    /// Instrumentation events observed (bounded ring would be production
    /// behaviour; tests drain it via the returned channel).
    events_tx: mpsc::UnboundedSender<(SimTime, NodeEvent)>,
    telemetry: SharedTelemetry,
}

impl UdpOverlayNode {
    /// Bind a socket and spawn the node's event loop with a private
    /// telemetry hub.
    ///
    /// Returns the handle, an event stream, and the join handle (which
    /// resolves to the sans-I/O core for post-mortem inspection).
    pub async fn spawn(
        config: NodeConfig,
        bind: SocketAddr,
        clock: WallClock,
    ) -> std::io::Result<(
        NodeHandle,
        mpsc::UnboundedReceiver<(SimTime, NodeEvent)>,
        tokio::task::JoinHandle<OverlayNode>,
    )> {
        Self::spawn_with_telemetry(config, bind, clock, SharedTelemetry::new()).await
    }

    /// Like [`UdpOverlayNode::spawn`], recording into a shared hub — one
    /// hub can aggregate a whole overlay. On exit the node also records
    /// its core's [`livenet_node::NodeStats`] and cc decision totals.
    pub async fn spawn_with_telemetry(
        config: NodeConfig,
        bind: SocketAddr,
        clock: WallClock,
        telemetry: SharedTelemetry,
    ) -> std::io::Result<(
        NodeHandle,
        mpsc::UnboundedReceiver<(SimTime, NodeEvent)>,
        tokio::task::JoinHandle<OverlayNode>,
    )> {
        let socket = UdpSocket::bind(bind).await?;
        let addr = socket.local_addr()?;
        let id = config.id;
        let recv_cap = config.max_datagram_bytes.min(MAX_UDP_DATAGRAM);
        let (tx, rx) = mpsc::channel(256);
        let (events_tx, events_rx) = mpsc::unbounded_channel();
        let mut node = UdpOverlayNode {
            core: OverlayNode::new(config),
            socket,
            clock,
            peers: HashMap::new(),
            peer_of_addr: HashMap::new(),
            clients: HashMap::new(),
            client_of_addr: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_gen: HashMap::new(),
            recv_cap,
            rx,
            events_tx,
            telemetry,
        };
        let join = tokio::spawn(async move {
            node.run().await;
            node.finish()
        });
        Ok((NodeHandle { tx, addr, id }, events_rx, join))
    }

    async fn run(&mut self) {
        let start_actions = self.core.start(self.clock.now());
        self.apply(start_actions).await;
        // One extra byte past the cap: `recv_from` filling it proves the
        // datagram was larger than the cap and got truncated by the
        // kernel, which an exact-cap read could not distinguish.
        let mut buf = vec![0u8; self.recv_cap + 1];
        loop {
            let next_timer = self.timers.peek().map(|Reverse((t, _, _))| *t);
            let sleep_until = next_timer
                .map(|t| self.clock.instant_at(t))
                .unwrap_or_else(|| {
                    self.clock.instant_at(self.clock.now() + SimDuration::from_secs(3600))
                });
            tokio::select! {
                biased;
                cmd = self.rx.recv() => {
                    match cmd {
                        None | Some(NodeCommand::Shutdown) => return,
                        Some(cmd) => self.handle_command(cmd).await,
                    }
                }
                recv = self.socket.recv_from(&mut buf) => {
                    if let Ok((len, src)) = recv {
                        self.dispatch_datagram(&buf, len, src).await;
                    }
                }
                _ = tokio::time::sleep_until(sleep_until) => {
                    self.fire_due_timers().await;
                }
            }
        }
    }

    /// Route one received datagram into the core by source address.
    async fn dispatch_datagram(&mut self, buf: &[u8], len: usize, src: SocketAddr) {
        if len > self.recv_cap {
            // Truncated by the kernel: the tail is gone, decoding would
            // at best produce a corrupt packet. Drop loudly.
            self.telemetry
                .with(|h| h.incr(ids::TRANSPORT_RECV_TRUNCATED));
            return;
        }
        let now = self.clock.now();
        let span = Span::begin(ids::TRANSPORT_RX_DISPATCH_MS, now);
        let actions = if let Some(&from) = self.peer_of_addr.get(&src) {
            self.core
                .on_datagram(now, from, Bytes::copy_from_slice(&buf[..len]))
        } else if let Some(&client) = self.client_of_addr.get(&src) {
            self.core
                .on_client_datagram(now, client, Bytes::copy_from_slice(&buf[..len]))
        } else {
            self.telemetry
                .with(|h| h.incr(ids::TRANSPORT_UNKNOWN_SOURCE_DROPS));
            return;
        };
        self.apply(actions).await;
        let end = self.clock.now();
        self.telemetry.with(|h| {
            h.incr(ids::TRANSPORT_RX_DATAGRAMS);
            span.end(h, end);
        });
    }

    async fn fire_due_timers(&mut self) {
        // Pop-one / fire / re-read the clock: `apply` can itself arm a
        // timer for an instant earlier than the next heap entry (a pacer
        // re-poll, say), and re-evaluating `now` and the heap head after
        // every apply fires it in this same pass instead of letting it
        // wait out a full sleep cycle.
        loop {
            let now = self.clock.now();
            let Some(&Reverse((t, key, gen))) = self.timers.peek() else {
                break;
            };
            if t > now {
                break;
            }
            self.timers.pop();
            if self.timer_gen.get(&key).copied().unwrap_or(0) != gen {
                self.telemetry
                    .with(|h| h.incr(ids::TRANSPORT_TIMERS_CANCELLED));
                continue;
            }
            let actions = self.core.on_timer(now, key);
            self.apply(actions).await;
        }
    }

    /// Invalidate every pending heap entry for `key` by bumping its
    /// generation; entries already in the heap are skipped when popped.
    fn cancel_timer(&mut self, key: u64) {
        *self.timer_gen.entry(key).or_insert(0) += 1;
    }

    async fn handle_command(&mut self, cmd: NodeCommand) {
        let now = self.clock.now();
        match cmd {
            NodeCommand::RegisterProducer { stream, ladder } => {
                self.core.register_producer(stream, ladder);
            }
            NodeCommand::Ingest { frame, payload } => {
                let actions = self.core.ingest_frame(now, &frame, &payload);
                self.apply(actions).await;
            }
            NodeCommand::AddPeer { node, addr, rtt } => {
                // A re-homed peer (same id, new address) must not keep
                // delivering datagrams under its old address mapping.
                if let Some(old) = self.peers.insert(node, addr) {
                    if old != addr && self.peer_of_addr.get(&old) == Some(&node) {
                        self.peer_of_addr.remove(&old);
                    }
                }
                self.peer_of_addr.insert(addr, node);
                self.core.set_neighbor_rtt(node, rtt);
            }
            NodeCommand::ClientAttach {
                client,
                stream,
                downlink,
                path,
                addr,
            } => {
                if let Some(old) = self.clients.insert(client, addr) {
                    if old != addr && self.client_of_addr.get(&old) == Some(&client) {
                        self.client_of_addr.remove(&old);
                    }
                }
                self.client_of_addr.insert(addr, client);
                let mut actions = Vec::new();
                self.core.client_attach(
                    now,
                    client,
                    stream,
                    downlink,
                    path.as_deref(),
                    &mut actions,
                );
                self.apply(actions).await;
            }
            NodeCommand::ClientDetach { client } => {
                let mut actions = Vec::new();
                self.core.client_detach(now, client, &mut actions);
                if let Some(addr) = self.clients.remove(&client) {
                    if self.client_of_addr.get(&addr) == Some(&client) {
                        self.client_of_addr.remove(&addr);
                    }
                }
                // The core dropped the client's pacer; its armed poll
                // timer must not fire against the stale key.
                self.cancel_timer(TimerKind::PacerPoll(Subscriber::Client(client)).encode());
                self.apply(actions).await;
            }
            NodeCommand::Shutdown => {}
        }
    }

    async fn apply(&mut self, actions: Vec<NodeAction>) {
        let mut tx_datagrams = 0u64;
        let mut tx_bytes = 0u64;
        let mut send_errors = 0u64;
        for action in actions {
            match action {
                NodeAction::Send { to, msg } => {
                    let dest = match to {
                        Subscriber::Node(n) => self.peers.get(&n).copied(),
                        Subscriber::Client(c) => self.clients.get(&c).copied(),
                    };
                    if let Some(addr) = dest {
                        // Best-effort, like the fast path demands.
                        let wire = msg.encode();
                        match self.socket.send_to(&wire, addr).await {
                            Ok(_) => {
                                tx_datagrams += 1;
                                tx_bytes += wire.len() as u64;
                            }
                            Err(_) => send_errors += 1,
                        }
                    }
                }
                NodeAction::SetTimer { at, key } => {
                    let gen = self.timer_gen.get(&key).copied().unwrap_or(0);
                    self.timers.push(Reverse((at, key, gen)));
                }
                NodeAction::Event(e) => {
                    let _ = self.events_tx.send((self.clock.now(), e));
                }
            }
        }
        if tx_datagrams > 0 || send_errors > 0 {
            self.telemetry.with(|h| {
                h.add(ids::TRANSPORT_TX_DATAGRAMS, tx_datagrams);
                h.add(ids::TRANSPORT_TX_BYTES, tx_bytes);
                h.add(ids::TRANSPORT_SEND_ERRORS, send_errors);
            });
        }
    }

    /// Record the core's cumulative stats into the shared hub and hand the
    /// core back (the join handle's return value).
    fn finish(self) -> OverlayNode {
        let core = self.core;
        self.telemetry.with(|h| {
            core.stats.record_into(h);
            core.cc_decision_totals().record_into(h);
        });
        core
    }
}
