//! A UDP overlay node: the sans-I/O core + a tokio event loop.
//!
//! The driver owns everything the core deliberately does not: the sockets,
//! the address books (peer ⇄ addr, client ⇄ addr), the timer wheel, and
//! the command channel. Datagrams are routed into the core by source
//! address — peer addresses through [`OverlayNode::on_datagram`], attached
//! client addresses through [`OverlayNode::on_client_datagram`] (so client
//! RTCP feedback drives cc and loss recovery on the wire exactly as in the
//! emulator), and unknown sources are dropped and counted.
//!
//! Two scale mechanisms ride under the same command API ([`WireNodeConfig`]):
//!
//! * **Batched I/O** — datagrams are received and sent through
//!   [`BatchSocket`] (`sendmmsg`/`recvmmsg` on Linux, a portable loop
//!   elsewhere), so a busy reflector pays ~1/32 of a syscall per datagram
//!   instead of one.
//! * **Socket sharding** — a node may bind several sockets; each remote
//!   (peer or client) is pinned to the shard `remote_id % shards` on
//!   *this* node's side, for both directions. A peer therefore always
//!   talks to the same local socket, kernel receive buffers multiply with
//!   the shard count, and per-shard recv loops stop serializing behind one
//!   another. Wiring code asks the *destination* handle which address a
//!   given source should target ([`NodeHandle::addr_for_peer`] /
//!   [`NodeHandle::addr_for_client`]).

use crate::batch::{self, BatchBackend, BatchSocket, RecvBatch, SendDatagram, MAX_BATCH};
use crate::clock::WallClock;
use crate::telemetry::SharedTelemetry;
use bytes::Bytes;
use livenet_media::{EncodedFrame, SimulcastLadder};
use livenet_node::{NodeAction, NodeConfig, NodeEvent, OverlayNode, Subscriber, TimerKind};
use livenet_telemetry::{ids, MetricSink, Span};
use livenet_types::{Bandwidth, ClientId, Error, NodeId, SimDuration, SimTime, StreamId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::sync::mpsc;

/// The UDP payload ceiling: receive buffers never need to exceed this,
/// whatever `NodeConfig::max_datagram_bytes` says.
const MAX_UDP_DATAGRAM: usize = 64 * 1024;

/// Most shards a single node may bind. Past this the fan-in win is gone
/// and the per-shard poll cost starts to dominate.
const MAX_RECV_SHARDS: usize = 16;

/// Flush-loop yields tolerated before the rest of a send batch is dropped
/// (and counted as send errors). UDP send buffers drain in kernel time, so
/// hitting this means the socket is wedged, not slow.
const MAX_FLUSH_RETRIES: u64 = 10_000;

/// The validated configuration surface for one wire node: the sans-I/O
/// core's [`NodeConfig`] plus the driver-level batching and sharding
/// knobs that only exist on real sockets.
#[derive(Debug, Clone)]
pub struct WireNodeConfig {
    /// The protocol core's configuration (including
    /// `max_datagram_bytes`, which sizes the receive slots here).
    pub node: NodeConfig,
    /// Max datagrams moved per batch syscall (1..=[`MAX_BATCH`]).
    pub batch: usize,
    /// Sockets this node binds (1..=16). Remotes are pinned to shard
    /// `id % recv_shards` for both directions.
    pub recv_shards: usize,
    /// I/O backend; [`BatchBackend::auto`] picks `mmsg` where available.
    pub backend: BatchBackend,
}

impl WireNodeConfig {
    /// Driver defaults (batch 32, one shard, auto backend) around a core
    /// config.
    pub fn new(node: NodeConfig) -> WireNodeConfig {
        WireNodeConfig {
            node,
            batch: 32,
            recv_shards: 1,
            backend: BatchBackend::auto(),
        }
    }

    /// Set the batch size (validated by [`WireNodeConfig::validate`]).
    pub fn with_batch(mut self, batch: usize) -> WireNodeConfig {
        self.batch = batch;
        self
    }

    /// Set the shard count (validated by [`WireNodeConfig::validate`]).
    pub fn with_recv_shards(mut self, shards: usize) -> WireNodeConfig {
        self.recv_shards = shards;
        self
    }

    /// Force an I/O backend (tests pin `Sequential` to compare paths).
    pub fn with_backend(mut self, backend: BatchBackend) -> WireNodeConfig {
        self.backend = backend;
        self
    }

    /// Reject configurations that would bind no sockets, issue empty
    /// batch syscalls, or truncate every datagram.
    pub fn validate(&self) -> livenet_types::Result<()> {
        if self.batch == 0 || self.batch > MAX_BATCH {
            return Err(Error::invalid_config(format!(
                "batch must be in 1..={MAX_BATCH}, got {}",
                self.batch
            )));
        }
        if self.recv_shards == 0 || self.recv_shards > MAX_RECV_SHARDS {
            return Err(Error::invalid_config(format!(
                "recv_shards must be in 1..={MAX_RECV_SHARDS}, got {}",
                self.recv_shards
            )));
        }
        if self.node.max_datagram_bytes < 512 {
            return Err(Error::invalid_config(format!(
                "max_datagram_bytes must be >= 512 (one RTP packet), got {}",
                self.node.max_datagram_bytes
            )));
        }
        Ok(())
    }
}

/// Commands accepted by a running node.
#[derive(Debug)]
pub enum NodeCommand {
    /// Declare this node the producer of a stream.
    RegisterProducer {
        /// The stream.
        stream: StreamId,
        /// Optional simulcast ladder for consumer-side selection.
        ladder: Option<SimulcastLadder>,
    },
    /// Ingest one encoded frame from a local broadcaster.
    Ingest {
        /// Frame metadata.
        frame: EncodedFrame,
        /// Encoded payload.
        payload: Bytes,
    },
    /// Register a peer overlay node's address.
    AddPeer {
        /// Peer id.
        node: NodeId,
        /// Peer socket address — the shard of the *peer* that this node
        /// should target, i.e. `peer_handle.addr_for_peer(my_id)`.
        addr: SocketAddr,
        /// RTT hint for the delay field.
        rtt: SimDuration,
    },
    /// Attach a viewer client (delivery over UDP to `addr`).
    ClientAttach {
        /// Client id.
        client: ClientId,
        /// Requested stream.
        stream: StreamId,
        /// Estimated downlink.
        downlink: Option<Bandwidth>,
        /// Producer-first path for reverse subscription (None = local hit
        /// expected).
        path: Option<Vec<NodeId>>,
        /// Where to send the client's packets — and where its RTCP
        /// feedback will come from.
        addr: SocketAddr,
    },
    /// Detach a viewer.
    ClientDetach {
        /// Client id.
        client: ClientId,
    },
    /// Stop the event loop.
    Shutdown,
}

/// Error returned by [`NodeHandle::send`] when the node task has exited
/// (shut down, panicked, or been aborted) and the command channel closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeGone;

impl std::fmt::Display for NodeGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "overlay node task has exited")
    }
}

impl std::error::Error for NodeGone {}

/// Handle to a spawned node.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    tx: mpsc::Sender<NodeCommand>,
    /// The node's primary (shard-0) socket address.
    pub addr: SocketAddr,
    /// All shard socket addresses, in shard order.
    pub shard_addrs: Arc<[SocketAddr]>,
    /// The node's overlay id.
    pub id: NodeId,
}

impl NodeHandle {
    /// Send a command to the node's event loop. Errors (instead of
    /// panicking) when the task is gone, so shutdown races — a command
    /// sent while the node is draining — stay recoverable.
    pub async fn send(&self, cmd: NodeCommand) -> Result<(), NodeGone> {
        self.tx.send(cmd).await.map_err(|_| NodeGone)
    }

    /// The shard address peer `from` must target when sending to this
    /// node (and the source address this node uses toward `from`).
    pub fn addr_for_peer(&self, from: NodeId) -> SocketAddr {
        self.shard_addrs[(from.raw() as usize) % self.shard_addrs.len()]
    }

    /// The shard address client `from` must target when sending to this
    /// node (and the source address this node uses toward `from`).
    pub fn addr_for_client(&self, from: ClientId) -> SocketAddr {
        self.shard_addrs[(from.raw() as usize) % self.shard_addrs.len()]
    }
}

/// The tokio driver around one [`OverlayNode`].
pub struct UdpOverlayNode {
    core: OverlayNode,
    sockets: Vec<BatchSocket>,
    clock: WallClock,
    peers: HashMap<NodeId, SocketAddr>,
    peer_of_addr: HashMap<SocketAddr, NodeId>,
    clients: HashMap<ClientId, SocketAddr>,
    client_of_addr: HashMap<SocketAddr, ClientId>,
    /// Pending timers as `(deadline, key, generation)`. A popped entry
    /// whose generation no longer matches `timer_gen[key]` was cancelled
    /// and is skipped instead of fired.
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    timer_gen: HashMap<u64, u64>,
    /// Receive slot capacity (from `NodeConfig::max_datagram_bytes`,
    /// capped at [`MAX_UDP_DATAGRAM`]).
    recv_cap: usize,
    /// Max datagrams per batch syscall.
    batch: usize,
    /// Per-shard outbound queues, filled by `apply` and drained by
    /// `flush_sends` in batch syscalls.
    out: Vec<Vec<SendDatagram>>,
    rx: mpsc::Receiver<NodeCommand>,
    /// Instrumentation events observed (bounded ring would be production
    /// behaviour; tests drain it via the returned channel).
    events_tx: mpsc::UnboundedSender<(SimTime, NodeEvent)>,
    telemetry: SharedTelemetry,
}

impl UdpOverlayNode {
    /// Bind a single-shard node with driver defaults and a private
    /// telemetry hub.
    ///
    /// Returns the handle, an event stream, and the join handle (which
    /// resolves to the sans-I/O core for post-mortem inspection).
    pub async fn spawn(
        config: NodeConfig,
        bind: SocketAddr,
        clock: WallClock,
    ) -> std::io::Result<(
        NodeHandle,
        mpsc::UnboundedReceiver<(SimTime, NodeEvent)>,
        tokio::task::JoinHandle<OverlayNode>,
    )> {
        Self::spawn_with_telemetry(config, bind, clock, SharedTelemetry::new()).await
    }

    /// Like [`UdpOverlayNode::spawn`], recording into a shared hub — one
    /// hub can aggregate a whole overlay. On exit the node also records
    /// its core's [`livenet_node::NodeStats`] and cc decision totals.
    pub async fn spawn_with_telemetry(
        config: NodeConfig,
        bind: SocketAddr,
        clock: WallClock,
        telemetry: SharedTelemetry,
    ) -> std::io::Result<(
        NodeHandle,
        mpsc::UnboundedReceiver<(SimTime, NodeEvent)>,
        tokio::task::JoinHandle<OverlayNode>,
    )> {
        Self::spawn_wire(WireNodeConfig::new(config), bind, clock, telemetry).await
    }

    /// Bind `config.recv_shards` sockets and spawn the node's event loop.
    ///
    /// The driver config is validated first; an invalid one surfaces as
    /// `InvalidInput` rather than binding half a node.
    pub async fn spawn_wire(
        config: WireNodeConfig,
        bind: SocketAddr,
        clock: WallClock,
        telemetry: SharedTelemetry,
    ) -> std::io::Result<(
        NodeHandle,
        mpsc::UnboundedReceiver<(SimTime, NodeEvent)>,
        tokio::task::JoinHandle<OverlayNode>,
    )> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut sockets = Vec::with_capacity(config.recv_shards);
        for _ in 0..config.recv_shards {
            sockets.push(BatchSocket::bind(bind, config.backend)?);
        }
        let shard_addrs: Arc<[SocketAddr]> =
            sockets.iter().map(BatchSocket::local_addr).collect();
        let addr = shard_addrs[0];
        let id = config.node.id;
        let recv_cap = config.node.max_datagram_bytes.min(MAX_UDP_DATAGRAM);
        let batch = config.batch;
        let (tx, rx) = mpsc::channel(256);
        let (events_tx, events_rx) = mpsc::unbounded_channel();
        let out = (0..config.recv_shards).map(|_| Vec::new()).collect();
        let mut node = UdpOverlayNode {
            core: OverlayNode::new(config.node),
            sockets,
            clock,
            peers: HashMap::new(),
            peer_of_addr: HashMap::new(),
            clients: HashMap::new(),
            client_of_addr: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_gen: HashMap::new(),
            recv_cap,
            batch,
            out,
            rx,
            events_tx,
            telemetry,
        };
        let join = tokio::spawn(async move {
            node.run().await;
            node.finish()
        });
        Ok((
            NodeHandle {
                tx,
                addr,
                shard_addrs,
                id,
            },
            events_rx,
            join,
        ))
    }

    /// The local socket index all traffic to/from peer `node` uses.
    fn shard_for_peer(&self, node: NodeId) -> usize {
        (node.raw() as usize) % self.sockets.len()
    }

    /// The local socket index all traffic to/from client `client` uses.
    fn shard_for_client(&self, client: ClientId) -> usize {
        (client.raw() as usize) % self.sockets.len()
    }

    async fn run(&mut self) {
        let start_actions = self.core.start(self.clock.now());
        self.apply(start_actions).await;
        // One extra byte past the cap per slot: a slot filled to `cap + 1`
        // proves the datagram was larger than the cap and got truncated by
        // the kernel, which an exact-cap read could not distinguish.
        let mut batch = RecvBatch::new(self.batch, self.recv_cap);
        let mut next_shard = 0usize;
        loop {
            let next_timer = self.timers.peek().map(|Reverse((t, _, _))| *t);
            let sleep_until = next_timer
                .map(|t| self.clock.instant_at(t))
                .unwrap_or_else(|| {
                    self.clock.instant_at(self.clock.now() + SimDuration::from_secs(3600))
                });
            tokio::select! {
                biased;
                cmd = self.rx.recv() => {
                    match cmd {
                        None | Some(NodeCommand::Shutdown) => return,
                        Some(cmd) => self.handle_command(cmd).await,
                    }
                }
                recv = batch::recv_any(&self.sockets, next_shard, &mut batch) => {
                    if let Ok((shard, _count)) = recv {
                        // Round-robin fairness: resume the scan after the
                        // shard that just produced, so a firehose shard
                        // cannot starve its siblings.
                        next_shard = (shard + 1) % self.sockets.len();
                        self.dispatch_batch(&batch).await;
                    }
                }
                _ = tokio::time::sleep_until(sleep_until) => {
                    self.fire_due_timers().await;
                }
            }
        }
    }

    /// Route one received batch into the core by source address.
    async fn dispatch_batch(&mut self, batch: &RecvBatch) {
        let fill = batch.len() as u64;
        self.telemetry.with(|h| {
            h.incr(ids::TRANSPORT_BATCH_RX_SYSCALLS);
            h.observe(ids::TRANSPORT_BATCH_RX_FILL, fill as f64);
        });
        let mut truncated = 0u64;
        let mut unknown = 0u64;
        let mut dispatched = 0u64;
        let started = self.clock.now();
        let span = Span::begin(ids::TRANSPORT_RX_DISPATCH_MS, started);
        for d in batch.iter() {
            if d.truncated {
                // Truncated by the kernel: the tail is gone, decoding
                // would at best produce a corrupt packet. Drop loudly.
                truncated += 1;
                continue;
            }
            let now = self.clock.now();
            let actions = if let Some(&from) = self.peer_of_addr.get(&d.src) {
                self.core.on_datagram(now, from, Bytes::copy_from_slice(d.data))
            } else if let Some(&client) = self.client_of_addr.get(&d.src) {
                self.core
                    .on_client_datagram(now, client, Bytes::copy_from_slice(d.data))
            } else {
                unknown += 1;
                continue;
            };
            dispatched += 1;
            self.apply(actions).await;
        }
        let end = self.clock.now();
        self.telemetry.with(|h| {
            if truncated > 0 {
                h.add(ids::TRANSPORT_RECV_TRUNCATED, truncated);
            }
            if unknown > 0 {
                h.add(ids::TRANSPORT_UNKNOWN_SOURCE_DROPS, unknown);
            }
            if dispatched > 0 {
                h.add(ids::TRANSPORT_RX_DATAGRAMS, dispatched);
            }
            span.end(h, end);
        });
    }

    async fn fire_due_timers(&mut self) {
        // Pop-one / fire / re-read the clock: `apply` can itself arm a
        // timer for an instant earlier than the next heap entry (a pacer
        // re-poll, say), and re-evaluating `now` and the heap head after
        // every apply fires it in this same pass instead of letting it
        // wait out a full sleep cycle.
        loop {
            let now = self.clock.now();
            let Some(&Reverse((t, key, gen))) = self.timers.peek() else {
                break;
            };
            if t > now {
                break;
            }
            self.timers.pop();
            if self.timer_gen.get(&key).copied().unwrap_or(0) != gen {
                self.telemetry
                    .with(|h| h.incr(ids::TRANSPORT_TIMERS_CANCELLED));
                continue;
            }
            let actions = self.core.on_timer(now, key);
            self.apply(actions).await;
        }
    }

    /// Invalidate every pending heap entry for `key` by bumping its
    /// generation; entries already in the heap are skipped when popped.
    fn cancel_timer(&mut self, key: u64) {
        *self.timer_gen.entry(key).or_insert(0) += 1;
    }

    async fn handle_command(&mut self, cmd: NodeCommand) {
        let now = self.clock.now();
        match cmd {
            NodeCommand::RegisterProducer { stream, ladder } => {
                self.core.register_producer(stream, ladder);
            }
            NodeCommand::Ingest { frame, payload } => {
                let actions = self.core.ingest_frame(now, &frame, &payload);
                self.apply(actions).await;
            }
            NodeCommand::AddPeer { node, addr, rtt } => {
                // A re-homed peer (same id, new address) must not keep
                // delivering datagrams under its old address mapping.
                if let Some(old) = self.peers.insert(node, addr) {
                    if old != addr && self.peer_of_addr.get(&old) == Some(&node) {
                        self.peer_of_addr.remove(&old);
                    }
                }
                self.peer_of_addr.insert(addr, node);
                self.core.set_neighbor_rtt(node, rtt);
            }
            NodeCommand::ClientAttach {
                client,
                stream,
                downlink,
                path,
                addr,
            } => {
                if let Some(old) = self.clients.insert(client, addr) {
                    if old != addr && self.client_of_addr.get(&old) == Some(&client) {
                        self.client_of_addr.remove(&old);
                    }
                }
                self.client_of_addr.insert(addr, client);
                let mut actions = Vec::new();
                self.core.client_attach(
                    now,
                    client,
                    stream,
                    downlink,
                    path.as_deref(),
                    &mut actions,
                );
                self.apply(actions).await;
            }
            NodeCommand::ClientDetach { client } => {
                let mut actions = Vec::new();
                self.core.client_detach(now, client, &mut actions);
                if let Some(addr) = self.clients.remove(&client) {
                    if self.client_of_addr.get(&addr) == Some(&client) {
                        self.client_of_addr.remove(&addr);
                    }
                }
                // The core dropped the client's pacer; its armed poll
                // timer must not fire against the stale key.
                self.cancel_timer(TimerKind::PacerPoll(Subscriber::Client(client)).encode());
                self.apply(actions).await;
            }
            NodeCommand::Shutdown => {}
        }
    }

    async fn apply(&mut self, actions: Vec<NodeAction>) {
        let mut queued = false;
        for action in actions {
            match action {
                NodeAction::Send { to, msg } => {
                    let route = match to {
                        Subscriber::Node(n) => self
                            .peers
                            .get(&n)
                            .copied()
                            .map(|addr| (self.shard_for_peer(n), addr)),
                        Subscriber::Client(c) => self
                            .clients
                            .get(&c)
                            .copied()
                            .map(|addr| (self.shard_for_client(c), addr)),
                    };
                    if let Some((shard, addr)) = route {
                        self.out[shard].push(SendDatagram {
                            to: addr,
                            payload: msg.encode(),
                        });
                        queued = true;
                    }
                }
                NodeAction::SetTimer { at, key } => {
                    let gen = self.timer_gen.get(&key).copied().unwrap_or(0);
                    self.timers.push(Reverse((at, key, gen)));
                }
                NodeAction::Event(e) => {
                    let _ = self.events_tx.send((self.clock.now(), e));
                }
            }
        }
        if queued {
            self.flush_sends().await;
        }
    }

    /// Drain every shard's outbound queue in batch syscalls. Best-effort,
    /// like the fast path demands: a wedged socket drops the remainder
    /// (counted), a failing head datagram is dropped (counted) and the
    /// rest of the batch proceeds.
    async fn flush_sends(&mut self) {
        let mut tx_datagrams = 0u64;
        let mut tx_bytes = 0u64;
        let mut send_errors = 0u64;
        let mut syscalls = 0u64;
        let mut retries = 0u64;
        let mut fills: Vec<u64> = Vec::new();
        for shard in 0..self.out.len() {
            let mut sent = 0usize;
            let mut budget = MAX_FLUSH_RETRIES;
            while sent < self.out[shard].len() {
                match self.sockets[shard].try_send_batch(&self.out[shard][sent..]) {
                    Ok(0) => {
                        retries += 1;
                        budget -= 1;
                        if budget == 0 {
                            send_errors += (self.out[shard].len() - sent) as u64;
                            break;
                        }
                        // The send buffer is full; let the receivers (and
                        // the kernel) drain it before retrying.
                        tokio::runtime::yield_now().await;
                    }
                    Ok(n) => {
                        syscalls += 1;
                        fills.push(n as u64);
                        for m in &self.out[shard][sent..sent + n] {
                            tx_bytes += m.payload.len() as u64;
                        }
                        tx_datagrams += n as u64;
                        sent += n;
                    }
                    Err(_) => {
                        // Head datagram is unsendable: drop it, move on.
                        send_errors += 1;
                        sent += 1;
                    }
                }
            }
            self.out[shard].clear();
        }
        if tx_datagrams > 0 || send_errors > 0 {
            self.telemetry.with(|h| {
                h.add(ids::TRANSPORT_TX_DATAGRAMS, tx_datagrams);
                h.add(ids::TRANSPORT_TX_BYTES, tx_bytes);
                h.add(ids::TRANSPORT_SEND_ERRORS, send_errors);
                h.add(ids::TRANSPORT_BATCH_TX_SYSCALLS, syscalls);
                h.add(ids::TRANSPORT_BATCH_TX_RETRIES, retries);
                for f in &fills {
                    h.observe(ids::TRANSPORT_BATCH_TX_FILL, *f as f64);
                }
            });
        }
    }

    /// Record the core's cumulative stats into the shared hub and hand the
    /// core back (the join handle's return value).
    fn finish(self) -> OverlayNode {
        let core = self.core;
        self.telemetry.with(|h| {
            core.stats.record_into(h);
            core.cc_decision_totals().record_into(h);
        });
        core
    }
}
