//! Tokio driver for the LiveNet data plane.
//!
//! The overlay node in `livenet-node` is a sans-I/O state machine; the
//! discrete-event emulator drives it in simulations, and this crate drives
//! the *same* core over real UDP sockets with the tokio runtime — the
//! structure the networking guides prescribe (protocol core + I/O driver).
//!
//! [`UdpOverlayNode`] owns one socket and one [`OverlayNode`]; incoming
//! datagrams and due timers are fed to the core, and the core's actions
//! (sends, new timers) are executed. Wall-clock time is mapped onto
//! [`SimTime`] relative to a per-process epoch, so the protocol core never
//! notices it left the simulator.
//!
//! A lightweight in-process [`BrainHandle`] wraps the Streaming Brain for
//! path lookups from driver code (in production this is an RPC; the
//! control-plane protocol itself is exercised by `livenet-brain`'s tests).
//!
//! [`testbed`] assembles the whole thing — brain, nodes, a paced
//! broadcaster, and feedback-sending viewers — into a driveable loopback
//! overlay, with every layer recording into one [`SharedTelemetry`] hub.

// `deny` rather than `forbid`: the one sanctioned exception is the
// direct `sendmmsg`/`recvmmsg` bindings in `batch::mmsg`, which carry a
// module-scoped allow and their own safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod brain;
pub mod clock;
pub mod node;
pub mod telemetry;
pub mod testbed;

pub use batch::{BatchBackend, BatchSocket, RecvBatch, SendDatagram, MAX_BATCH};
pub use brain::BrainHandle;
pub use clock::WallClock;
pub use node::{NodeCommand, NodeGone, NodeHandle, UdpOverlayNode, WireNodeConfig};
pub use telemetry::SharedTelemetry;
pub use testbed::{
    TestbedBuilder, TestbedConfig, ViewerReport, WireRunReport, WireViewer,
};
