//! A clonable, thread-safe wrapper around [`TelemetryHub`] for the wire
//! datapath.
//!
//! The emulator owns its hub outright — everything runs on one logical
//! timeline. On the wire, several spawned node tasks (and the harness
//! around them) record concurrently, so the hub moves behind a mutex.
//! Recording always happens through a closure ([`SharedTelemetry::with`]),
//! never through a guard that could be held across an `await` — which is
//! what lets CI gate the crate with `clippy::await_holding_lock`.

use livenet_telemetry::{Snapshot, TelemetryHub};
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared handle to one [`TelemetryHub`], clonable across tasks.
#[derive(Debug, Clone, Default)]
pub struct SharedTelemetry {
    inner: Arc<Mutex<TelemetryHub>>,
}

impl SharedTelemetry {
    /// A fresh, empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record into (or read from) the hub. The lock is scoped to the
    /// closure: do not `await` inside.
    pub fn with<R>(&self, f: impl FnOnce(&mut TelemetryHub) -> R) -> R {
        let mut hub = self.inner.lock();
        f(&mut hub)
    }

    /// Canonical snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.lock().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_telemetry::{ids, MetricSink};

    #[test]
    fn clones_share_one_hub() {
        let a = SharedTelemetry::new();
        let b = a.clone();
        a.with(|h| h.incr(ids::TRANSPORT_RX_DATAGRAMS));
        b.with(|h| h.incr(ids::TRANSPORT_RX_DATAGRAMS));
        assert_eq!(a.with(|h| h.counter(ids::TRANSPORT_RX_DATAGRAMS)), 2);
        let snap = b.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k == "transport.rx_datagrams" && *v == 2));
    }
}
