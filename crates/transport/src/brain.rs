//! In-process Streaming Brain handle.
//!
//! Wraps the Brain behind a cheap `Arc<Mutex<…>>` so UDP overlay nodes and
//! driver code can register streams and request paths concurrently, the
//! way consumer nodes call the Path Decision module (§4.4). The RPC layer
//! is deliberately out of scope here: the transport crate demonstrates the
//! data plane over real sockets; control-plane behaviour (PIB/SIB,
//! invalidation, recompute) is the `livenet-brain` crate.

use livenet_brain::{PathAssignment, StreamingBrain};
use livenet_types::{NodeId, Result, SimTime, StreamId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared handle to a Streaming Brain instance.
#[derive(Clone)]
pub struct BrainHandle {
    inner: Arc<Mutex<StreamingBrain>>,
}

impl BrainHandle {
    /// Wrap a brain.
    pub fn new(brain: StreamingBrain) -> Self {
        BrainHandle {
            inner: Arc::new(Mutex::new(brain)),
        }
    }

    /// Register a stream at its producer.
    pub fn register_stream(&self, stream: StreamId, producer: NodeId) {
        self.inner.lock().register_stream(stream, producer);
    }

    /// Unregister a finished stream.
    pub fn unregister_stream(&self, stream: StreamId) {
        self.inner.lock().unregister_stream(stream);
    }

    /// Path request (Algorithm 1's GetPath).
    pub fn path_request(
        &self,
        stream: StreamId,
        consumer: NodeId,
        now: SimTime,
    ) -> Result<PathAssignment> {
        self.inner.lock().path_request(stream, consumer, now)
    }

    /// Prefetch assignments for a popular stream (§4.4).
    pub fn prefetch_paths(&self, stream: StreamId, now: SimTime) -> Vec<PathAssignment> {
        self.inner.lock().prefetch_paths(stream, now)
    }

    /// Periodic recompute entry point.
    pub fn maybe_recompute(&self, now: SimTime) -> bool {
        self.inner.lock().maybe_recompute(now)
    }

    /// Run a closure against the brain (reports, telemetry).
    pub fn with<R>(&self, f: impl FnOnce(&mut StreamingBrain) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_brain::BrainConfig;
    use livenet_topology::{GeoConfig, GeoTopology};

    #[test]
    fn handle_shares_one_brain() {
        let geo = GeoTopology::generate(&GeoConfig::tiny(1));
        let nodes: Vec<NodeId> = geo.topology.routable_node_ids().collect();
        let h = BrainHandle::new(StreamingBrain::new(geo.topology, BrainConfig::default()));
        let h2 = h.clone();
        let s = StreamId::new(5);
        h.register_stream(s, nodes[0]);
        let lookup = h2.path_request(s, nodes[3], SimTime::ZERO).unwrap();
        assert!(!lookup.paths.is_empty());
        h2.unregister_stream(s);
        assert!(h.path_request(s, nodes[3], SimTime::ZERO).is_err());
    }
}
