//! Loopback integration: the same sans-I/O cores that run in the emulator
//! drive real UDP sockets through a 3-node chain A→B→C with a viewer.

use bytes::Bytes;
use livenet_media::{GopConfig, VideoEncoder};
use livenet_node::{NodeConfig, NodeEvent, OverlayMsg};
use livenet_packet::{Depacketizer, RtpPacket};
use livenet_transport::{NodeCommand, UdpOverlayNode, WallClock};
use livenet_types::{Bandwidth, ClientId, NodeId, SimDuration, StreamId};
use std::net::SocketAddr;
use tokio::net::UdpSocket;

const STREAM: StreamId = StreamId(7);

fn local() -> SocketAddr {
    "127.0.0.1:0".parse().expect("valid addr")
}

#[tokio::test]
async fn frames_flow_over_real_udp_chain() {
    let clock = WallClock::new();
    let ids = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
    let mut handles = Vec::new();
    let mut event_rxs = Vec::new();
    let mut joins = Vec::new();
    for &id in &ids {
        let (h, ev, join) = UdpOverlayNode::spawn(NodeConfig::new(id), local(), clock)
            .await
            .expect("bind");
        handles.push(h);
        event_rxs.push(ev);
        joins.push(join);
    }
    // Full peer wiring (chain neighbors suffice, but full mesh is fine).
    for a in 0..3 {
        for b in 0..3 {
            if a != b {
                handles[a]
                    .send(NodeCommand::AddPeer {
                        node: handles[b].id,
                        addr: handles[b].addr,
                        rtt: SimDuration::from_millis(1),
                    })
                    .await
            .expect("node alive");
            }
        }
    }
    // Producer at A.
    handles[0]
        .send(NodeCommand::RegisterProducer {
            stream: STREAM,
            ladder: None,
        })
        .await
            .expect("node alive");

    // A client socket attached at C.
    let client_sock = UdpSocket::bind(local()).await.expect("client bind");
    let client_addr = client_sock.local_addr().expect("addr");
    handles[2]
        .send(NodeCommand::ClientAttach {
            client: ClientId::new(9),
            stream: STREAM,
            downlink: Some(Bandwidth::from_mbps(50)),
            path: Some(vec![ids[0], ids[1], ids[2]]),
            addr: client_addr,
        })
        .await
        .expect("node alive");

    // Give the subscription a moment to establish over loopback.
    tokio::time::sleep(std::time::Duration::from_millis(150)).await;

    // Read the client socket CONCURRENTLY with ingest — a socket left
    // unread for the whole broadcast overflows its kernel buffer.
    let reader = tokio::spawn(async move {
        let mut depack = Depacketizer::new();
        let mut packets = 0u32;
        let mut frames = 0u32;
        let mut buf = vec![0u8; 2048];
        loop {
            let recv = tokio::time::timeout(
                std::time::Duration::from_millis(800),
                client_sock.recv_from(&mut buf),
            )
            .await;
            let Ok(Ok((len, _))) = recv else { break };
            let Ok(msg) = OverlayMsg::decode(Bytes::copy_from_slice(&buf[..len])) else {
                continue;
            };
            if let OverlayMsg::Rtp { packet, .. } = msg {
                if let Ok(rtp) = RtpPacket::decode(packet) {
                    packets += 1;
                    depack.push(rtp);
                    frames += depack.drain().len() as u32;
                }
            }
        }
        (packets, frames)
    });

    // Feed ~1.5 s of video through the producer in real time.
    let mut encoder = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(1),
        clock.now(),
    );
    for _ in 0..22 {
        let frame = encoder.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        handles[0]
            .send(NodeCommand::Ingest { frame, payload })
            .await
            .expect("node alive");
        tokio::time::sleep(std::time::Duration::from_millis(66)).await;
    }

    let (packets, frames) = reader.await.expect("reader");
    println!("packets={packets} frames={frames}");

    // The chain actually established through B (observe C's events).
    let mut established = false;
    while let Ok((_, e)) = event_rxs[2].try_recv() {
        if matches!(e, NodeEvent::SubscriptionEstablished { .. }) {
            established = true;
        }
    }
    assert!(established, "C never confirmed its upstream subscription");

    for h in &handles {
        h.send(NodeCommand::Shutdown).await
            .expect("node alive");
    }
    for (i, j) in joins.into_iter().enumerate() {
        let core = j.await.expect("join");
        println!(
            "node {i}: ingested={} forwarded={} dup={} nack_seqs={} nack_msgs={} rtx={}",
            core.stats.ingested, core.stats.forwarded, core.stats.duplicates,
            core.stats.nacks_sent, core.stats.nack_batches, core.stats.rtx_served,
        );
    }
    assert!(packets >= 20, "client received only {packets} RTP packets");
    assert!(frames >= 15, "client assembled only {frames} frames");
}

#[tokio::test]
async fn second_viewer_gets_local_hit_over_udp() {
    let clock = WallClock::new();
    let ids = [NodeId::new(1), NodeId::new(2)];
    let mut handles = Vec::new();
    let mut event_rxs = Vec::new();
    for &id in &ids {
        let (h, ev, _join) = UdpOverlayNode::spawn(NodeConfig::new(id), local(), clock)
            .await
            .expect("bind");
        handles.push(h);
        event_rxs.push(ev);
    }
    for a in 0..2 {
        let b = 1 - a;
        handles[a]
            .send(NodeCommand::AddPeer {
                node: handles[b].id,
                addr: handles[b].addr,
                rtt: SimDuration::from_millis(1),
            })
            .await
            .expect("node alive");
    }
    handles[0]
        .send(NodeCommand::RegisterProducer {
            stream: STREAM,
            ladder: None,
        })
        .await
            .expect("node alive");

    let c1 = UdpSocket::bind(local()).await.expect("bind");
    handles[1]
        .send(NodeCommand::ClientAttach {
            client: ClientId::new(1),
            stream: STREAM,
            downlink: Some(Bandwidth::from_mbps(50)),
            path: Some(vec![ids[0], ids[1]]),
            addr: c1.local_addr().expect("addr"),
        })
        .await
        .expect("node alive");
    tokio::time::sleep(std::time::Duration::from_millis(100)).await;

    // Stream a GoP so B's cache fills.
    let mut encoder = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(1),
        clock.now(),
    );
    for _ in 0..31 {
        let frame = encoder.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        handles[0]
            .send(NodeCommand::Ingest { frame, payload })
            .await
            .expect("node alive");
        tokio::time::sleep(std::time::Duration::from_millis(20)).await;
    }

    // Second viewer: must be a local hit with a startup burst.
    let c2 = UdpSocket::bind(local()).await.expect("bind");
    handles[1]
        .send(NodeCommand::ClientAttach {
            client: ClientId::new(2),
            stream: STREAM,
            downlink: Some(Bandwidth::from_mbps(50)),
            path: None,
            addr: c2.local_addr().expect("addr"),
        })
        .await
        .expect("node alive");
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;

    let (mut hit, mut burst) = (false, false);
    while let Ok((_, e)) = event_rxs[1].try_recv() {
        match e {
            NodeEvent::CacheHit { .. } => hit = true,
            NodeEvent::StartupBurst { .. } => burst = true,
            _ => {}
        }
    }
    assert!(hit, "second viewer was not a local hit");
    assert!(burst, "no GoP-cache startup burst");

    // And the burst actually reached client 2's socket.
    let mut buf = vec![0u8; 2048];
    let got = tokio::time::timeout(
        std::time::Duration::from_millis(500),
        c2.recv_from(&mut buf),
    )
    .await;
    assert!(got.is_ok(), "client 2 received nothing");

    for h in &handles {
        h.send(NodeCommand::Shutdown).await
            .expect("node alive");
    }
}
