//! Property: the batched (`sendmmsg`/`recvmmsg`) datapath is
//! observationally identical to the portable sequential fallback — the
//! same payload multiset comes out, whatever mix of sizes goes in.
//!
//! Binds 127.0.0.1:0 only; plain blocking loops, no runtime.

use bytes::Bytes;
use livenet_transport::{BatchBackend, BatchSocket, RecvBatch, SendDatagram, MAX_BATCH};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn local() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback addr")
}

/// Send every payload through a fresh socket pair on `backend` and
/// collect the delivered payloads, sorted (UDP may reorder).
fn deliver(backend: BatchBackend, payloads: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let tx = BatchSocket::bind(local(), backend).expect("bind tx");
    let rx = BatchSocket::bind(local(), backend).expect("bind rx");
    let msgs: Vec<SendDatagram> = payloads
        .iter()
        .map(|p| SendDatagram {
            to: rx.local_addr(),
            payload: Bytes::from(p.clone()),
        })
        .collect();
    let mut sent = 0;
    while sent < msgs.len() {
        let n = tx.try_send_batch(&msgs[sent..]).expect("send");
        assert!(n > 0, "loopback send stalled at {sent}/{}", msgs.len());
        sent += n;
    }
    let mut batch = RecvBatch::new(MAX_BATCH, 1024);
    let mut got: Vec<Vec<u8>> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(3);
    while got.len() < msgs.len() && Instant::now() < deadline {
        let n = rx.try_recv_batch(&mut batch).expect("recv");
        if n == 0 {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        for d in batch.iter() {
            assert!(!d.truncated, "payloads fit the 1024B cap by construction");
            got.push(d.data.to_vec());
        }
    }
    got.sort();
    got
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Whatever datagram mix goes in, both backends deliver exactly the
    /// sent multiset — nothing lost, nothing reordered-within-a-payload,
    /// nothing duplicated.
    #[test]
    fn batched_and_sequential_deliver_identical_multisets(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..900), 1..48)
    ) {
        let auto = deliver(BatchBackend::auto(), &payloads);
        let sequential = deliver(BatchBackend::Sequential, &payloads);
        let mut want: Vec<Vec<u8>> = payloads.clone();
        want.sort();
        prop_assert_eq!(&auto, &want, "batched backend diverged from the sent multiset");
        prop_assert_eq!(&sequential, &want, "sequential backend diverged from the sent multiset");
    }
}
