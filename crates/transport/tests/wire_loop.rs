//! Loopback integration for the fixed datapath: client feedback reaching
//! the core, oversized-datagram handling, detach cancelling timers, the
//! re-homed-peer address book, `NodeGone` on a dead handle, the validated
//! `TestbedBuilder` surface, and the 50+ node geo-fleet smoke run.
//!
//! Everything binds 127.0.0.1:0 only.

use bytes::Bytes;
use livenet_media::{GopConfig, VideoEncoder};
use livenet_node::{NodeConfig, OverlayMsg};
use livenet_packet::{ReceiverReport, RtcpPacket};
use livenet_telemetry::ids;
use livenet_topology::GeoConfig;
use livenet_transport::{
    testbed, NodeCommand, NodeGone, SharedTelemetry, TestbedBuilder, TestbedConfig,
    UdpOverlayNode, WallClock, WireViewer,
};
use livenet_types::{Bandwidth, ClientId, Error, NodeId, SeqNo, SimDuration, Ssrc, StreamId};
use std::net::SocketAddr;
use std::time::Duration;
use tokio::net::UdpSocket;

const STREAM: StreamId = StreamId(77);

fn local() -> SocketAddr {
    "127.0.0.1:0".parse().expect("valid addr")
}

fn counter(telemetry: &SharedTelemetry, id: livenet_telemetry::MetricId) -> u64 {
    telemetry.with(|h| h.counter(id))
}

/// The full acceptance loop, shortened: a 4-node diamond with two
/// feedback-sending viewers over real UDP. Client RTCP receiver reports
/// must reach the consumer core (cc decisions recorded), a synthetically
/// lossy viewer must drive the pacing rate down, and delivery must stay
/// ≥ 99% of broadcast frames.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn client_feedback_round_trip_drives_cc_over_udp() {
    let cfg = TestbedBuilder::diamond(STREAM)
        .broadcast(Duration::from_millis(1600))
        .drain(Duration::from_millis(700))
        .rr_interval(Duration::from_millis(250))
        // Viewer 1 turns synthetically lossy after 800 ms.
        .tweak(|c| c.viewers[1].lossy_rr = Some((Duration::from_millis(800), 0.3)))
        .build()
        .expect("diamond preset is valid");

    let report = testbed::run(cfg).await.expect("validated config runs");

    assert!(report.frames_broadcast >= 20, "broadcast too short: {}", report.frames_broadcast);
    for v in &report.viewers {
        assert!(v.rr_sent >= 2, "viewer {:?} sent only {} RRs", v.client, v.rr_sent);
        assert!(v.startup_ms.is_some(), "viewer {:?} never completed a frame", v.client);
    }
    let delivery = report.worst_delivery();
    assert!(delivery >= 0.99, "worst viewer delivered only {delivery:.3} of frames");

    // Feedback round-trip: the consumer core built sender-side cc state
    // for the clients and the lossy viewer forced decreases.
    let total = report.cc.increases + report.cc.holds + report.cc.decreases;
    assert!(total > 0, "no cc decisions recorded — client RTCP never reached the core");
    assert!(report.cc.decreases >= 1, "lossy client RRs drove no rate decrease: {:?}", report.cc);

    // And the decreased rate is visible on the lossy viewer's pacer.
    let lossy = report.viewers[1].client;
    let rate = report
        .client_rates
        .iter()
        .find(|(c, _)| *c == lossy)
        .and_then(|(_, r)| *r)
        .expect("lossy client still attached at shutdown");
    assert!(
        rate < Bandwidth::from_mbps(20),
        "rate never moved below the 20 Mbps initial: {rate:?}"
    );

    // The shared hub saw the wire datapath.
    assert!(report
        .telemetry
        .counters
        .iter()
        .any(|(k, v)| k == "transport.rx_datagrams" && *v > 0));
}

/// Datagrams larger than `NodeConfig::max_datagram_bytes` are dropped and
/// counted instead of being silently truncated and fed to the core; the
/// node keeps running.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn oversized_datagram_is_counted_and_dropped() {
    let clock = WallClock::new();
    let telemetry = SharedTelemetry::new();
    let mut config = NodeConfig::new(NodeId::new(1));
    config.max_datagram_bytes = 1024;
    let (h, _events, join) =
        UdpOverlayNode::spawn_with_telemetry(config, local(), clock, telemetry.clone())
            .await
            .expect("bind");

    let peer = UdpSocket::bind(local()).await.expect("peer bind");
    h.send(NodeCommand::AddPeer {
        node: NodeId::new(2),
        addr: peer.local_addr().expect("addr"),
        rtt: SimDuration::from_millis(1),
    })
    .await
    .expect("node alive");

    // Oversized (> 1024 B after the kernel copy): dropped + counted.
    let big = vec![0u8; 4096];
    peer.send_to(&big, h.addr).await.expect("send big");
    // A normal keepalive still gets through afterwards.
    peer.send_to(&OverlayMsg::Keepalive.encode(), h.addr)
        .await
        .expect("send keepalive");
    tokio::time::sleep(Duration::from_millis(120)).await;

    assert_eq!(counter(&telemetry, ids::TRANSPORT_RECV_TRUNCATED), 1);
    assert!(counter(&telemetry, ids::TRANSPORT_RX_DATAGRAMS) >= 1, "node stopped dispatching");

    h.send(NodeCommand::Shutdown).await.expect("node alive");
    join.await.expect("join");
}

/// Detaching a client cancels its armed pacer timers: the stale keys are
/// skipped (and counted) instead of firing into the core.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn detach_cancels_client_timers() {
    let clock = WallClock::new();
    let telemetry = SharedTelemetry::new();
    let (h, _events, join) = UdpOverlayNode::spawn_with_telemetry(
        NodeConfig::new(NodeId::new(1)),
        local(),
        clock,
        telemetry.clone(),
    )
    .await
    .expect("bind");
    h.send(NodeCommand::RegisterProducer {
        stream: STREAM,
        ladder: None,
    })
    .await
    .expect("node alive");

    // A slow client: the pacer backlogs immediately, arming poll timers.
    let viewer = UdpSocket::bind(local()).await.expect("viewer bind");
    let client = ClientId::new(5);
    h.send(NodeCommand::ClientAttach {
        client,
        stream: STREAM,
        downlink: Some(Bandwidth::from_kbps(200)),
        path: None,
        addr: viewer.local_addr().expect("addr"),
    })
    .await
    .expect("node alive");

    // Burst several frames in, then detach before the pacer drains.
    let mut encoder = VideoEncoder::new(STREAM, GopConfig::default(), Bandwidth::from_mbps(2), clock.now());
    for _ in 0..10 {
        let frame = encoder.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.send(NodeCommand::Ingest { frame, payload })
            .await
            .expect("node alive");
    }
    h.send(NodeCommand::ClientDetach { client })
        .await
        .expect("node alive");

    // Let the stale deadlines come due.
    tokio::time::sleep(Duration::from_millis(400)).await;
    assert!(
        counter(&telemetry, ids::TRANSPORT_TIMERS_CANCELLED) >= 1,
        "no stale timer was cancelled after detach"
    );

    h.send(NodeCommand::Shutdown).await.expect("node alive");
    join.await.expect("join");
}

/// `AddPeer` for a known node at a new address removes the stale reverse
/// mapping: datagrams from the old address no longer resolve to the peer.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn rehomed_peer_old_address_is_unknown() {
    let clock = WallClock::new();
    let telemetry = SharedTelemetry::new();
    let (h, _events, join) = UdpOverlayNode::spawn_with_telemetry(
        NodeConfig::new(NodeId::new(1)),
        local(),
        clock,
        telemetry.clone(),
    )
    .await
    .expect("bind");

    let old_home = UdpSocket::bind(local()).await.expect("old bind");
    let new_home = UdpSocket::bind(local()).await.expect("new bind");
    for sock in [&old_home, &new_home] {
        h.send(NodeCommand::AddPeer {
            node: NodeId::new(2),
            addr: sock.local_addr().expect("addr"),
            rtt: SimDuration::from_millis(1),
        })
        .await
        .expect("node alive");
    }

    // From the re-homed address: dispatched. From the stale one: dropped.
    new_home
        .send_to(&OverlayMsg::Keepalive.encode(), h.addr)
        .await
        .expect("send new");
    old_home
        .send_to(&OverlayMsg::Keepalive.encode(), h.addr)
        .await
        .expect("send old");
    tokio::time::sleep(Duration::from_millis(120)).await;

    assert_eq!(counter(&telemetry, ids::TRANSPORT_RX_DATAGRAMS), 1);
    assert_eq!(counter(&telemetry, ids::TRANSPORT_UNKNOWN_SOURCE_DROPS), 1);

    h.send(NodeCommand::Shutdown).await.expect("node alive");
    join.await.expect("join");
}

/// A handle whose node task has exited reports `NodeGone` instead of
/// panicking.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn send_to_dead_node_returns_node_gone() {
    let clock = WallClock::new();
    let (h, _events, join) = UdpOverlayNode::spawn(NodeConfig::new(NodeId::new(1)), local(), clock)
        .await
        .expect("bind");
    h.send(NodeCommand::Shutdown).await.expect("first send ok");
    join.await.expect("join");
    let err = h
        .send(NodeCommand::ClientDetach {
            client: ClientId::new(1),
        })
        .await;
    assert_eq!(err, Err(NodeGone));
}

/// Client RTCP from an address that was attached and then detached no
/// longer reaches the core (the address book forgets the client).
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn detached_client_feedback_is_dropped() {
    let clock = WallClock::new();
    let telemetry = SharedTelemetry::new();
    let (h, _events, join) = UdpOverlayNode::spawn_with_telemetry(
        NodeConfig::new(NodeId::new(1)),
        local(),
        clock,
        telemetry.clone(),
    )
    .await
    .expect("bind");
    let viewer = UdpSocket::bind(local()).await.expect("viewer bind");
    let client = ClientId::new(3);
    h.send(NodeCommand::RegisterProducer {
        stream: STREAM,
        ladder: None,
    })
    .await
    .expect("node alive");
    h.send(NodeCommand::ClientAttach {
        client,
        stream: STREAM,
        downlink: None,
        path: None,
        addr: viewer.local_addr().expect("addr"),
    })
    .await
    .expect("node alive");

    let rr = OverlayMsg::Rtcp {
        stream: STREAM,
        packet: RtcpPacket::ReceiverReport(ReceiverReport {
            ssrc: Ssrc(1),
            loss_fraction: 0.0,
            highest_seq: SeqNo(1),
            jitter_us: 0,
        })
        .encode(),
    };
    viewer.send_to(&rr.encode(), h.addr).await.expect("send attached");
    tokio::time::sleep(Duration::from_millis(120)).await;
    assert_eq!(counter(&telemetry, ids::TRANSPORT_RX_DATAGRAMS), 1);

    h.send(NodeCommand::ClientDetach { client })
        .await
        .expect("node alive");
    viewer.send_to(&rr.encode(), h.addr).await.expect("send detached");
    tokio::time::sleep(Duration::from_millis(120)).await;
    assert_eq!(counter(&telemetry, ids::TRANSPORT_UNKNOWN_SOURCE_DROPS), 1);

    h.send(NodeCommand::Shutdown).await.expect("node alive");
    join.await.expect("join");
}

/// The deprecated `TestbedConfig::diamond` shim (kept one release) still
/// produces the exact builder-made diamond.
#[test]
fn deprecated_diamond_shim_matches_builder() {
    #[allow(deprecated)]
    let shim = TestbedConfig::diamond(STREAM);
    let built = TestbedBuilder::diamond(STREAM).build().expect("valid");
    assert_eq!(shim.nodes, built.nodes);
    assert_eq!(shim.edges, built.edges);
    assert_eq!(shim.producer, built.producer);
    assert_eq!(shim.viewers.len(), built.viewers.len());
    shim.validate().expect("shim output validates");
}

/// Every class of bad input surfaces as `Error::InvalidConfig` from
/// `build()` — including the out-of-range viewer index that used to
/// panic deep inside `run`.
#[test]
fn builder_rejects_invalid_configs() {
    let cases: Vec<(&str, livenet_types::Result<TestbedConfig>)> = vec![
        (
            "viewer node out of range",
            TestbedBuilder::diamond(STREAM).viewer(WireViewer::at(9)).build(),
        ),
        (
            "edge endpoint out of range",
            TestbedBuilder::new(STREAM)
                .nodes(2)
                .edge(0, 5, SimDuration::from_millis(5))
                .build(),
        ),
        (
            "producer out of range",
            TestbedBuilder::new(STREAM).producer(3).build(),
        ),
        (
            "no viewers",
            TestbedBuilder::diamond(STREAM).viewers(Vec::new()).build(),
        ),
        (
            "uplink below bitrate",
            TestbedBuilder::diamond(STREAM)
                .bitrate(Bandwidth::from_mbps(10))
                .uplink(Bandwidth::from_mbps(1))
                .build(),
        ),
        (
            "oversized batch",
            TestbedBuilder::diamond(STREAM).batch(1000).build(),
        ),
        (
            "zero shards",
            TestbedBuilder::diamond(STREAM).hub_shards(0).build(),
        ),
        (
            "geo fan-out of zero",
            TestbedBuilder::geo_fleet(STREAM, &GeoConfig::tiny(1), 4, 0, 1).build(),
        ),
        (
            "geo viewer count of zero",
            TestbedBuilder::geo_fleet(STREAM, &GeoConfig::tiny(1), 0, 2, 1).build(),
        ),
    ];
    for (what, result) in cases {
        match result {
            Err(Error::InvalidConfig(_)) => {}
            other => panic!("{what}: expected InvalidConfig, got {other:?}"),
        }
    }
}

/// `run` re-validates, so a hand-corrupted config errors instead of
/// panicking mid-harness.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn run_rejects_corrupted_config() {
    let mut cfg = TestbedBuilder::diamond(STREAM).build().expect("valid");
    cfg.viewers[0].node = 99;
    match testbed::run(cfg).await {
        Err(Error::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

/// The tentpole smoke: a 50+ node geo fleet (region hubs in a full-mesh
/// core, workload-staggered viewers on country edge nodes) over real
/// loopback sockets, time-capped. Delivery must stay ≥ 99 % for every
/// viewer and each congested region must record at least one cc rate
/// decrease at its edge nodes.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn geo_fleet_smoke_fifty_nodes() {
    let geo = GeoConfig::paper_scale(7);
    let mut cfg = TestbedBuilder::geo_fleet(STREAM, &geo, 24, 2, 11)
        .broadcast(Duration::from_secs(3))
        .drain(Duration::from_millis(1200))
        .build()
        .expect("geo fleet preset is valid");
    assert!(cfg.nodes >= 50, "geo fleet too small: {} nodes", cfg.nodes);
    assert!(
        cfg.viewers.iter().any(|v| !v.join_after.is_zero()),
        "workload produced no staggered arrivals"
    );

    // Congest the two busiest viewer regions: every viewer there turns
    // synthetically lossy late in its session.
    let countries = cfg.countries.clone();
    let mut by_country = std::collections::BTreeMap::<u32, usize>::new();
    for v in &cfg.viewers {
        *by_country.entry(countries[v.node]).or_insert(0) += 1;
    }
    let mut ranked: Vec<(usize, u32)> =
        by_country.iter().map(|(&c, &n)| (n, c)).collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    let congested: Vec<u32> = ranked.iter().take(2).map(|&(_, c)| c).collect();
    for v in &mut cfg.viewers {
        if congested.contains(&countries[v.node]) {
            v.lossy_rr = Some((Duration::from_millis(900), 0.3));
        }
    }

    let report = testbed::run(cfg).await.expect("geo fleet runs");

    assert!(report.frames_broadcast >= 30, "broadcast too short: {}", report.frames_broadcast);
    for v in &report.viewers {
        assert!(
            v.startup_ms.is_some(),
            "viewer {:?} at node {:?} never completed a frame",
            v.client,
            v.node
        );
    }
    let delivery = report.worst_delivery();
    if delivery < 0.99 {
        for v in &report.viewers {
            if v.delivery() < 0.99 {
                panic!(
                    "viewer {:?} at node {:?}: delivered {}/{} (attach {:?}, \
                     startup {:?} ms, packets {})",
                    v.client, v.node, v.frames_completed, v.expected_frames,
                    v.attach_at, v.startup_ms, v.packets
                );
            }
        }
    }
    for &c in &congested {
        assert!(
            report.cc_decreases_in_country(c) >= 1,
            "congested country {c} recorded no cc decrease: {:?}",
            report.node_cc
        );
    }
    // The batched hot path actually engaged.
    assert!(report
        .telemetry
        .counters
        .iter()
        .any(|(k, v)| k == "transport.batch_rx_syscalls" && *v > 0));
}
