//! The fast path's priority-aware pacer (paper §5.2).
//!
//! The pacer is the fast path's executor of the congestion-control decision
//! made on the slow path: it spaces packet transmissions at the pacing rate
//! GCC computed. Priorities:
//!
//! 1. **Audio** packets jump the queue entirely, avoiding head-of-line
//!    blocking behind large video frames.
//! 2. **Retransmissions** (slow-path recoveries) go before fresh video —
//!    "the retransmitted packets have a higher sending priority than the
//!    packets in the send queue in the fast path" (§5.1 footnote 8).
//! 3. **Video** is paced at the nominal rate, except that while an I frame
//!    is draining the pacer applies a pacing *gain* of 1.5 to empty the
//!    queue quickly (I frames are much larger than P/B frames).

use livenet_types::{Bandwidth, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Transmission priority classes, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SendPriority {
    /// Audio: always first.
    Audio,
    /// Retransmitted packets: before fresh video.
    Retransmission,
    /// Fresh video packets.
    Video,
}

/// A packet waiting in the pacer, carrying an opaque payload `T`.
#[derive(Debug, Clone)]
pub struct PacedPacket<T> {
    /// Priority class.
    pub priority: SendPriority,
    /// Wire size in bytes (drives pacing).
    pub bytes: usize,
    /// True when this packet belongs to an I frame (triggers pacing gain).
    pub is_iframe: bool,
    /// The caller's payload (e.g. an encoded RTP packet + destination set).
    pub payload: T,
}

/// Pacer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacerConfig {
    /// Pacing gain applied while I-frame packets are draining (paper: 1.5).
    pub iframe_gain: f64,
    /// Maximum burst the token bucket accumulates, as a time at rate.
    pub burst_window: SimDuration,
    /// Queue length (packets) after which [`Pacer::is_backlogged`] trips;
    /// the consumer node uses this signal for proactive frame dropping.
    pub backlog_threshold: usize,
}

impl Default for PacerConfig {
    fn default() -> Self {
        PacerConfig {
            iframe_gain: 1.5,
            burst_window: SimDuration::from_millis(40),
            backlog_threshold: 64,
        }
    }
}

/// Token-bucket pacer with three priority FIFOs.
#[derive(Debug, Clone)]
pub struct Pacer<T> {
    config: PacerConfig,
    rate: Bandwidth,
    budget_bytes: f64,
    last_refill: Option<SimTime>,
    audio: VecDeque<PacedPacket<T>>,
    rtx: VecDeque<PacedPacket<T>>,
    video: VecDeque<PacedPacket<T>>,
    /// Total packets ever sent (telemetry).
    pub sent: u64,
}

impl<T> Pacer<T> {
    /// New pacer at an initial rate.
    pub fn new(config: PacerConfig, rate: Bandwidth) -> Self {
        Pacer {
            config,
            rate,
            budget_bytes: 0.0,
            last_refill: None,
            audio: VecDeque::new(),
            rtx: VecDeque::new(),
            video: VecDeque::new(),
            sent: 0,
        }
    }

    /// Update the pacing rate (GCC output from the slow path).
    pub fn set_rate(&mut self, rate: Bandwidth) {
        self.rate = rate;
    }

    /// Current pacing rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Queue a packet.
    pub fn enqueue(&mut self, packet: PacedPacket<T>) {
        match packet.priority {
            SendPriority::Audio => self.audio.push_back(packet),
            SendPriority::Retransmission => self.rtx.push_back(packet),
            SendPriority::Video => self.video.push_back(packet),
        }
    }

    /// Packets currently queued.
    pub fn queue_len(&self) -> usize {
        self.audio.len() + self.rtx.len() + self.video.len()
    }

    /// Bytes currently queued.
    pub fn queue_bytes(&self) -> usize {
        self.audio.iter().map(|p| p.bytes).sum::<usize>()
            + self.rtx.iter().map(|p| p.bytes).sum::<usize>()
            + self.video.iter().map(|p| p.bytes).sum::<usize>()
    }

    /// True when the queue exceeds the backlog threshold — the signal the
    /// consumer's frame dropper watches.
    pub fn is_backlogged(&self) -> bool {
        self.queue_len() > self.config.backlog_threshold
    }

    /// Drop queued *video* packets for which `predicate` returns true
    /// (frame dropping never touches audio or retransmissions). Returns the
    /// number of packets removed.
    pub fn drop_video_where(&mut self, mut predicate: impl FnMut(&T) -> bool) -> usize {
        let before = self.video.len();
        self.video.retain(|p| !predicate(&p.payload));
        before - self.video.len()
    }

    fn head_gain(&self) -> f64 {
        // Audio & retransmissions also benefit from the boost if an I frame
        // is next in the video queue — the gain exists to drain the queue.
        let iframe_at_head = self
            .video
            .front()
            .map(|p| p.is_iframe)
            .unwrap_or(false);
        if iframe_at_head {
            self.config.iframe_gain
        } else {
            1.0
        }
    }

    fn refill(&mut self, now: SimTime) {
        let gain = self.head_gain();
        if let Some(last) = self.last_refill {
            let dt = now.saturating_since(last);
            let bytes = self.rate.bytes_in(dt) as f64 * gain;
            let cap = self.rate.bytes_in(self.config.burst_window) as f64 * gain;
            self.budget_bytes = (self.budget_bytes + bytes).min(cap.max(1500.0));
        } else {
            // First poll: allow one MTU immediately.
            self.budget_bytes = self.budget_bytes.max(1500.0);
        }
        self.last_refill = Some(now);
    }

    fn pop_next(&mut self) -> Option<PacedPacket<T>> {
        self.audio
            .pop_front()
            .or_else(|| self.rtx.pop_front())
            .or_else(|| self.video.pop_front())
    }

    /// Release every packet sendable at `now` under the rate budget.
    pub fn poll(&mut self, now: SimTime) -> Vec<PacedPacket<T>> {
        self.refill(now);
        let mut out = Vec::new();
        while self.budget_bytes > 0.0 {
            let Some(p) = self.pop_next() else { break };
            self.budget_bytes -= p.bytes as f64;
            self.sent += 1;
            out.push(p);
        }
        out
    }

    /// When the next queued packet becomes sendable; `None` when idle.
    pub fn next_send_time(&self, now: SimTime) -> Option<SimTime> {
        let head_bytes = self
            .audio
            .front()
            .or_else(|| self.rtx.front())
            .or_else(|| self.video.front())
            .map(|p| p.bytes)?;
        if self.budget_bytes > 0.0 {
            return Some(now);
        }
        let deficit = head_bytes as f64 - self.budget_bytes;
        let effective = self.rate.mul_f64(self.head_gain());
        if effective == Bandwidth::ZERO {
            return Some(now + SimDuration::from_secs(3600));
        }
        let secs = deficit * 8.0 / effective.as_bps() as f64;
        Some(now + SimDuration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(priority: SendPriority, bytes: usize, is_iframe: bool, tag: u32) -> PacedPacket<u32> {
        PacedPacket {
            priority,
            bytes,
            is_iframe,
            payload: tag,
        }
    }

    fn pacer(kbps: u64) -> Pacer<u32> {
        Pacer::new(PacerConfig::default(), Bandwidth::from_kbps(kbps))
    }

    #[test]
    fn audio_jumps_ahead_of_video() {
        let mut p = pacer(10_000);
        p.enqueue(pkt(SendPriority::Video, 1200, false, 1));
        p.enqueue(pkt(SendPriority::Video, 1200, false, 2));
        p.enqueue(pkt(SendPriority::Audio, 100, false, 3));
        let sent = p.poll(SimTime::ZERO);
        assert_eq!(sent[0].payload, 3, "audio first");
    }

    #[test]
    fn retransmissions_before_fresh_video() {
        let mut p = pacer(10_000);
        p.enqueue(pkt(SendPriority::Video, 1200, false, 1));
        p.enqueue(pkt(SendPriority::Retransmission, 1200, false, 2));
        let sent = p.poll(SimTime::ZERO);
        assert_eq!(sent[0].payload, 2);
    }

    #[test]
    fn pacing_spreads_packets_over_time() {
        // 800 kbps = 100 kB/s. 10 packets of 1000 B = 10 kB ≈ 100 ms.
        let mut p = pacer(800);
        for i in 0..10 {
            p.enqueue(pkt(SendPriority::Video, 1000, false, i));
        }
        let first = p.poll(SimTime::ZERO);
        assert!(first.len() < 10, "must not blast the whole queue at once");
        // Polling every 10 ms, the rest drains within ~200 ms.
        let mut total = first.len();
        for ms in (10..=300).step_by(10) {
            total += p.poll(SimTime::from_millis(ms)).len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn iframe_gain_drains_faster() {
        let drain_time = |iframe: bool| {
            let mut p = pacer(800);
            for i in 0..20 {
                p.enqueue(pkt(SendPriority::Video, 1000, iframe, i));
            }
            let mut now = SimTime::ZERO;
            let mut sent = 0;
            while sent < 20 {
                sent += p.poll(now).len();
                now += SimDuration::from_millis(5);
            }
            now
        };
        let plain = drain_time(false);
        let boosted = drain_time(true);
        assert!(
            boosted < plain,
            "boosted={boosted} plain={plain} — 1.5× gain should drain faster"
        );
    }

    #[test]
    fn next_send_time_none_when_idle() {
        let p = pacer(800);
        assert!(p.next_send_time(SimTime::ZERO).is_none());
    }

    #[test]
    fn next_send_time_in_future_when_budget_spent() {
        let mut p = pacer(800);
        for i in 0..10 {
            p.enqueue(pkt(SendPriority::Video, 1000, false, i));
        }
        p.poll(SimTime::ZERO);
        let t = p.next_send_time(SimTime::ZERO).unwrap();
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn backlog_signal_trips_and_clears() {
        let mut p = Pacer::new(
            PacerConfig {
                backlog_threshold: 5,
                ..Default::default()
            },
            Bandwidth::from_mbps(100),
        );
        for i in 0..10 {
            p.enqueue(pkt(SendPriority::Video, 100, false, i));
        }
        assert!(p.is_backlogged());
        p.poll(SimTime::from_millis(100));
        assert!(!p.is_backlogged());
    }

    #[test]
    fn drop_video_where_spares_audio_and_rtx() {
        let mut p = pacer(800);
        p.enqueue(pkt(SendPriority::Audio, 100, false, 1));
        p.enqueue(pkt(SendPriority::Retransmission, 100, false, 1));
        p.enqueue(pkt(SendPriority::Video, 100, false, 1));
        p.enqueue(pkt(SendPriority::Video, 100, false, 2));
        let dropped = p.drop_video_where(|&tag| tag == 1);
        assert_eq!(dropped, 1);
        assert_eq!(p.queue_len(), 3);
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut p = pacer(100);
        for i in 0..50 {
            p.enqueue(pkt(SendPriority::Video, 1000, false, i));
        }
        p.poll(SimTime::ZERO);
        p.set_rate(Bandwidth::from_mbps(100));
        let sent = p.poll(SimTime::from_millis(50));
        assert!(sent.len() > 20, "high rate should flush: {}", sent.len());
    }
}
