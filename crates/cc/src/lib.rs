//! Congestion control and pacing for the LiveNet slow/fast paths.
//!
//! The slow path adopts GCC (Google Congestion Control, Carlucci et al.
//! 2016) — paper §5.1: "The sender rate control decides the pacing rate
//! based on both the delay-based receiver-side control and the loss-based
//! sender-side control. This pacing rate will then be passed to the pacer in
//! the fast path." This crate implements that split from scratch:
//!
//! * [`delay`] — the receiver-side delay-based estimator: inter-group delay
//!   gradient, trendline slope, adaptive-threshold over-use detector, and
//!   the AIMD remote rate controller (produces REMB values);
//! * [`loss`] — the sender-side loss-based controller;
//! * [`GccSender`] — combines the two into the pacing rate;
//! * [`pacer`] — the fast path's token-bucket pacer with the paper's
//!   priority rules: audio first (avoid head-of-line blocking), then
//!   retransmissions, then video, with a pacing gain of 1.5 while an
//!   I frame is draining.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod loss;
pub mod pacer;

pub use delay::{DelayBasedEstimator, OveruseDetector, RateControlState, TrendlineEstimator};
pub use loss::LossBasedController;
pub use pacer::{PacedPacket, Pacer, PacerConfig, SendPriority};

use livenet_telemetry::{ids, MetricSink};
use livenet_types::{Bandwidth, SimTime};

/// How each rate decision moved the pacing rate (telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateDecisionStats {
    /// Decisions that raised the pacing rate.
    pub increases: u64,
    /// Decisions that left the pacing rate unchanged.
    pub holds: u64,
    /// Decisions that lowered the pacing rate.
    pub decreases: u64,
}

impl RateDecisionStats {
    /// Export these counters — the client-log analogue of the sender's
    /// rate-control trace — into a metric sink.  Values are cumulative
    /// totals, so record into a sink that has not seen this sender before.
    pub fn record_into(&self, sink: &mut impl MetricSink) {
        sink.add(ids::CC_RATE_INCREASES, self.increases);
        sink.add(ids::CC_RATE_HOLDS, self.holds);
        sink.add(ids::CC_RATE_DECREASES, self.decreases);
    }
}

/// Sender-side GCC: combines the receiver's delay-based estimate (REMB)
/// with the local loss-based estimate; the pacing rate is their minimum.
#[derive(Debug, Clone)]
pub struct GccSender {
    loss_based: LossBasedController,
    remb: Option<Bandwidth>,
    floor: Bandwidth,
    ceil: Bandwidth,
    /// Telemetry: how rate decisions (loss reports, REMBs) moved the rate.
    pub decisions: RateDecisionStats,
}

impl GccSender {
    /// New sender-side controller with an initial rate and rate bounds.
    pub fn new(initial: Bandwidth, floor: Bandwidth, ceil: Bandwidth) -> Self {
        GccSender {
            loss_based: LossBasedController::new(initial, floor, ceil),
            remb: None,
            floor,
            ceil,
            decisions: RateDecisionStats::default(),
        }
    }

    /// Feed a receiver report's loss fraction (sender-side control input).
    pub fn on_loss_report(&mut self, now: SimTime, loss_fraction: f64) {
        let before = self.pacing_rate();
        self.loss_based.on_loss_report(now, loss_fraction);
        self.note_decision(before);
    }

    /// Feed the receiver's delay-based estimate (REMB).
    pub fn on_remb(&mut self, bitrate: Bandwidth) {
        let before = self.pacing_rate();
        self.remb = Some(bitrate.max(self.floor).min(self.ceil));
        self.note_decision(before);
    }

    fn note_decision(&mut self, before: Bandwidth) {
        let after = self.pacing_rate();
        if after > before {
            self.decisions.increases += 1;
        } else if after < before {
            self.decisions.decreases += 1;
        } else {
            self.decisions.holds += 1;
        }
    }

    /// The pacing rate: min(loss-based, delay-based).
    pub fn pacing_rate(&self) -> Bandwidth {
        let lb = self.loss_based.rate();
        match self.remb {
            Some(r) => lb.min(r),
            None => lb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_types::SimDuration;

    #[test]
    fn pacing_rate_is_min_of_controls() {
        let mut s = GccSender::new(
            Bandwidth::from_kbps(1000),
            Bandwidth::from_kbps(100),
            Bandwidth::from_mbps(10),
        );
        assert_eq!(s.pacing_rate(), Bandwidth::from_kbps(1000));
        s.on_remb(Bandwidth::from_kbps(600));
        assert_eq!(s.pacing_rate(), Bandwidth::from_kbps(600));
        s.on_remb(Bandwidth::from_mbps(5));
        assert_eq!(s.pacing_rate(), Bandwidth::from_kbps(1000));
    }

    #[test]
    fn heavy_loss_reduces_rate() {
        let mut s = GccSender::new(
            Bandwidth::from_kbps(1000),
            Bandwidth::from_kbps(100),
            Bandwidth::from_mbps(10),
        );
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now += SimDuration::from_secs(1);
            s.on_loss_report(now, 0.2);
        }
        assert!(s.pacing_rate() < Bandwidth::from_kbps(1000));
    }

    #[test]
    fn rate_decisions_are_counted_and_recordable() {
        let mut s = GccSender::new(
            Bandwidth::from_kbps(1000),
            Bandwidth::from_kbps(100),
            Bandwidth::from_mbps(10),
        );
        s.on_remb(Bandwidth::from_kbps(600)); // decrease
        s.on_remb(Bandwidth::from_kbps(600)); // hold
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now += SimDuration::from_secs(1);
            s.on_loss_report(now, 0.2);
        }
        let d = s.decisions;
        assert_eq!(d.increases + d.holds + d.decreases, 7);
        assert!(d.decreases >= 1, "{d:?}");
        let mut hub = livenet_telemetry::TelemetryHub::new();
        d.record_into(&mut hub);
        let snap = hub.snapshot();
        assert_eq!(
            snap.counter("cc.rate_increases")
                + snap.counter("cc.rate_holds")
                + snap.counter("cc.rate_decreases"),
            7
        );
    }

    #[test]
    fn remb_clamped_to_bounds() {
        let mut s = GccSender::new(
            Bandwidth::from_kbps(500),
            Bandwidth::from_kbps(100),
            Bandwidth::from_kbps(2000),
        );
        s.on_remb(Bandwidth::from_bps(1));
        assert_eq!(s.pacing_rate(), Bandwidth::from_kbps(100));
    }
}
