//! Sender-side loss-based rate control (GCC).
//!
//! Per Carlucci et al. 2016 §4.1: on each receiver report with loss
//! fraction `fl`:
//!
//! * `fl > 10%` → multiplicative decrease: `rate ← rate (1 − 0.5 fl)`;
//! * `fl < 2%`  → gentle increase: `rate ← 1.05 rate`;
//! * otherwise  → hold.

use livenet_types::{Bandwidth, SimDuration, SimTime};

/// Loss-based controller state.
#[derive(Debug, Clone)]
pub struct LossBasedController {
    rate: Bandwidth,
    floor: Bandwidth,
    ceil: Bandwidth,
    last_update: Option<SimTime>,
}

impl LossBasedController {
    /// New controller.
    pub fn new(initial: Bandwidth, floor: Bandwidth, ceil: Bandwidth) -> Self {
        LossBasedController {
            rate: initial.max(floor).min(ceil),
            floor,
            ceil,
            last_update: None,
        }
    }

    /// Current sender-side rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Apply one receiver report. Increases are rate-limited to one per
    /// 200 ms so a burst of reports cannot multiply the adjustment, but a
    /// multiplicative decrease must never wait out the hold: during a loss
    /// episode the first report after an increase would otherwise be
    /// swallowed and the sender would keep pushing into a lossy path for
    /// another window.
    pub fn on_loss_report(&mut self, now: SimTime, loss_fraction: f64) {
        let fl = loss_fraction.clamp(0.0, 1.0);
        let decrease = fl > 0.10;
        if !decrease {
            if let Some(last) = self.last_update {
                if now.saturating_since(last) < SimDuration::from_millis(200) {
                    return;
                }
            }
        }
        self.last_update = Some(now);
        if decrease {
            self.rate = self.rate.mul_f64(1.0 - 0.5 * fl);
        } else if fl < 0.02 {
            self.rate = self.rate.mul_f64(1.05);
        }
        self.rate = self.rate.max(self.floor).min(self.ceil);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> LossBasedController {
        LossBasedController::new(
            Bandwidth::from_kbps(1000),
            Bandwidth::from_kbps(100),
            Bandwidth::from_mbps(5),
        )
    }

    #[test]
    fn low_loss_increases() {
        let mut c = ctl();
        c.on_loss_report(SimTime::from_secs(1), 0.0);
        assert_eq!(c.rate(), Bandwidth::from_kbps(1050));
    }

    #[test]
    fn high_loss_decreases_proportionally() {
        let mut c = ctl();
        c.on_loss_report(SimTime::from_secs(1), 0.2);
        // 1000 * (1 - 0.5*0.2) = 900.
        assert_eq!(c.rate(), Bandwidth::from_kbps(900));
    }

    #[test]
    fn moderate_loss_holds() {
        let mut c = ctl();
        c.on_loss_report(SimTime::from_secs(1), 0.05);
        assert_eq!(c.rate(), Bandwidth::from_kbps(1000));
    }

    #[test]
    fn updates_rate_limited() {
        let mut c = ctl();
        c.on_loss_report(SimTime::from_millis(1000), 0.0);
        c.on_loss_report(SimTime::from_millis(1050), 0.0); // ignored
        assert_eq!(c.rate(), Bandwidth::from_kbps(1050));
        c.on_loss_report(SimTime::from_millis(1300), 0.0);
        assert!(c.rate() > Bandwidth::from_kbps(1050));
    }

    #[test]
    fn decrease_bypasses_hold_window() {
        let mut c = ctl();
        c.on_loss_report(SimTime::from_millis(1000), 0.0);
        assert_eq!(c.rate(), Bandwidth::from_kbps(1050));
        // Heavy loss 50 ms later must act immediately, not wait out the
        // 200 ms hold started by the increase.
        c.on_loss_report(SimTime::from_millis(1050), 0.2);
        assert_eq!(c.rate(), Bandwidth::from_kbps(945)); // 1050 * 0.9
        // The decrease restarts the hold for subsequent increases.
        c.on_loss_report(SimTime::from_millis(1100), 0.0);
        assert_eq!(c.rate(), Bandwidth::from_kbps(945));
    }

    #[test]
    fn bounds_enforced() {
        let mut c = ctl();
        for i in 0..100 {
            c.on_loss_report(SimTime::from_secs(i), 0.9);
        }
        assert_eq!(c.rate(), Bandwidth::from_kbps(100));
        for i in 100..300 {
            c.on_loss_report(SimTime::from_secs(i), 0.0);
        }
        assert_eq!(c.rate(), Bandwidth::from_mbps(5));
    }
}
