//! Receiver-side delay-based bandwidth estimation (GCC).
//!
//! Pipeline, per Carlucci et al. ("Analysis and design of the google
//! congestion control for web real-time communication", MMSys 2016) and the
//! modern trendline variant used by WebRTC:
//!
//! 1. **Inter-group deltas** — packets are grouped into bursts (5 ms
//!    departure windows); for consecutive groups `i-1, i` the one-way delay
//!    gradient is `d(i) = (t_i − t_{i−1}) − (T_i − T_{i−1})` with `t` the
//!    arrival and `T` the departure time of the last packet of each group.
//! 2. **Trendline filter** — a linear regression over the last N smoothed
//!    accumulated-delay points estimates the queuing-delay slope.
//! 3. **Over-use detector** — compares the modified trend against an
//!    adaptive threshold γ(t); sustained excursions signal over-use or
//!    under-use.
//! 4. **AIMD remote rate controller** — a 3-state machine (Increase / Hold /
//!    Decrease) produces the receiver-estimated max bitrate sent back to the
//!    sender as REMB.

use livenet_types::{Bandwidth, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Departure-time window that groups packets into bursts.
const BURST_WINDOW: SimDuration = SimDuration::from_millis(5);
/// Number of delay samples the trendline regresses over.
const TRENDLINE_WINDOW: usize = 20;
/// Smoothing coefficient for accumulated delay.
const SMOOTHING: f64 = 0.9;
/// Gain applied to the raw slope before threshold comparison.
const TREND_GAIN: f64 = 4.0;
/// Threshold adaptation gains (up when |m| > γ, down otherwise).
const K_UP: f64 = 0.0087;
const K_DOWN: f64 = 0.039;
/// Over-use must persist this long before signalling.
const OVERUSE_TIME: SimDuration = SimDuration::from_millis(10);
/// Multiplicative decrease factor.
const BETA: f64 = 0.85;

/// One packet-group boundary record.
#[derive(Debug, Clone, Copy)]
struct Group {
    first_departure: SimTime,
    last_departure: SimTime,
    last_arrival: SimTime,
    size_bytes: u64,
}

/// Bandwidth-usage signal from the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandwidthUsage {
    /// Queues draining: delay slope significantly negative.
    Underusing,
    /// Stable.
    Normal,
    /// Queues building: delay slope significantly positive.
    Overusing,
}

/// Trendline slope estimator over smoothed accumulated delays.
#[derive(Debug, Clone)]
pub struct TrendlineEstimator {
    history: VecDeque<(f64, f64)>, // (arrival ms since first, smoothed accum delay ms)
    accumulated_delay_ms: f64,
    smoothed_delay_ms: f64,
    first_arrival: Option<SimTime>,
}

impl Default for TrendlineEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl TrendlineEstimator {
    /// Empty estimator.
    pub fn new() -> Self {
        TrendlineEstimator {
            history: VecDeque::with_capacity(TRENDLINE_WINDOW + 1),
            accumulated_delay_ms: 0.0,
            smoothed_delay_ms: 0.0,
            first_arrival: None,
        }
    }

    /// Add one inter-group delay gradient sample; returns the current slope
    /// (ms of queuing delay per ms of wall time).
    pub fn update(&mut self, arrival: SimTime, delay_gradient_ms: f64) -> f64 {
        let first = *self.first_arrival.get_or_insert(arrival);
        let x = arrival.saturating_since(first).as_millis_f64();
        self.accumulated_delay_ms += delay_gradient_ms;
        self.smoothed_delay_ms = SMOOTHING * self.smoothed_delay_ms
            + (1.0 - SMOOTHING) * self.accumulated_delay_ms;
        self.history.push_back((x, self.smoothed_delay_ms));
        if self.history.len() > TRENDLINE_WINDOW {
            self.history.pop_front();
        }
        self.slope()
    }

    /// Least-squares slope of the stored points (0 until enough samples).
    pub fn slope(&self) -> f64 {
        let n = self.history.len();
        if n < 2 {
            return 0.0;
        }
        let sum_x: f64 = self.history.iter().map(|p| p.0).sum();
        let sum_y: f64 = self.history.iter().map(|p| p.1).sum();
        let mean_x = sum_x / n as f64;
        let mean_y = sum_y / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for &(x, y) in &self.history {
            num += (x - mean_x) * (y - mean_y);
            den += (x - mean_x) * (x - mean_x);
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

/// Adaptive-threshold over-use detector.
#[derive(Debug, Clone)]
pub struct OveruseDetector {
    threshold: f64,
    last_update: Option<SimTime>,
    overusing_since: Option<SimTime>,
    state: BandwidthUsage,
}

impl Default for OveruseDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl OveruseDetector {
    /// Detector with the WebRTC initial threshold (12.5 ms).
    pub fn new() -> Self {
        OveruseDetector {
            threshold: 12.5,
            last_update: None,
            overusing_since: None,
            state: BandwidthUsage::Normal,
        }
    }

    /// Current adaptive threshold γ (exposed for tests/telemetry).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Feed the modified trend `m = slope * min(samples, 60) * gain` and get
    /// the usage signal.
    pub fn detect(&mut self, now: SimTime, trend: f64, num_samples: usize) -> BandwidthUsage {
        let m = trend * (num_samples.min(60) as f64) * TREND_GAIN * 10.0;
        // Threshold adaptation (clamped so it cannot run away).
        if let Some(last) = self.last_update {
            let dt_ms = now.saturating_since(last).as_millis_f64().min(100.0);
            let k = if m.abs() < self.threshold { K_DOWN } else { K_UP };
            self.threshold += dt_ms * k * (m.abs() - self.threshold);
            self.threshold = self.threshold.clamp(6.0, 600.0);
        }
        self.last_update = Some(now);

        if m > self.threshold {
            let since = *self.overusing_since.get_or_insert(now);
            if now.saturating_since(since) >= OVERUSE_TIME {
                self.state = BandwidthUsage::Overusing;
            }
        } else {
            self.overusing_since = None;
            self.state = if m < -self.threshold {
                BandwidthUsage::Underusing
            } else {
                BandwidthUsage::Normal
            };
        }
        self.state
    }
}

/// AIMD remote-rate-controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateControlState {
    /// Probing upward.
    Increase,
    /// Holding after a decrease or under-use.
    Hold,
    /// Backing off.
    Decrease,
}

/// The complete receiver-side delay-based estimator.
#[derive(Debug, Clone)]
pub struct DelayBasedEstimator {
    trendline: TrendlineEstimator,
    detector: OveruseDetector,
    state: RateControlState,
    estimate: Bandwidth,
    floor: Bandwidth,
    ceil: Bandwidth,
    current_group: Option<Group>,
    prev_group: Option<Group>,
    samples: usize,
    // Incoming-rate measurement over a sliding 500 ms window.
    recv_window: VecDeque<(SimTime, u64)>,
    last_rate_update: Option<SimTime>,
}

impl DelayBasedEstimator {
    /// New estimator starting from `initial`.
    pub fn new(initial: Bandwidth, floor: Bandwidth, ceil: Bandwidth) -> Self {
        DelayBasedEstimator {
            trendline: TrendlineEstimator::new(),
            detector: OveruseDetector::new(),
            state: RateControlState::Increase,
            estimate: initial,
            floor,
            ceil,
            current_group: None,
            prev_group: None,
            samples: 0,
            recv_window: VecDeque::new(),
            last_rate_update: None,
        }
    }

    /// Current receiver-side estimate (the REMB value).
    pub fn estimate(&self) -> Bandwidth {
        self.estimate
    }

    /// Current rate-control state.
    pub fn state(&self) -> RateControlState {
        self.state
    }

    /// Measured incoming rate over the last 500 ms.
    pub fn incoming_rate(&self, now: SimTime) -> Bandwidth {
        let horizon = now - SimDuration::from_millis(500);
        let bytes: u64 = self
            .recv_window
            .iter()
            .filter(|(t, _)| *t >= horizon)
            .map(|(_, b)| *b)
            .sum();
        Bandwidth::from_bps(bytes * 8 * 2) // bytes per 0.5s → bits per s
    }

    /// Feed one received packet: `departure` is the sender timestamp
    /// (reconstructed from the RTP timestamp / abs-send-time), `arrival` the
    /// local receive time.
    pub fn on_packet(&mut self, departure: SimTime, arrival: SimTime, size: usize) {
        self.recv_window.push_back((arrival, size as u64));
        while let Some(&(t, _)) = self.recv_window.front() {
            if arrival.saturating_since(t) > SimDuration::from_millis(1500) {
                self.recv_window.pop_front();
            } else {
                break;
            }
        }

        match &mut self.current_group {
            Some(g)
                if departure.saturating_since(g.first_departure) <= BURST_WINDOW =>
            {
                g.last_departure = g.last_departure.max(departure);
                g.last_arrival = g.last_arrival.max(arrival);
                g.size_bytes += size as u64;
            }
            _ => {
                // Close the current group and compute the gradient vs prev.
                if let (Some(prev), Some(cur)) = (self.prev_group, self.current_group) {
                    let arrival_delta =
                        cur.last_arrival.saturating_since(prev.last_arrival).as_millis_f64();
                    let departure_delta = cur
                        .last_departure
                        .saturating_since(prev.last_departure)
                        .as_millis_f64();
                    let gradient = arrival_delta - departure_delta;
                    self.samples += 1;
                    let slope = self.trendline.update(cur.last_arrival, gradient);
                    let usage = self.detector.detect(cur.last_arrival, slope, self.samples);
                    self.update_rate(cur.last_arrival, usage);
                }
                self.prev_group = self.current_group;
                self.current_group = Some(Group {
                    first_departure: departure,
                    last_departure: departure,
                    last_arrival: arrival,
                    size_bytes: size as u64,
                });
            }
        }
    }

    fn update_rate(&mut self, now: SimTime, usage: BandwidthUsage) {
        // State transitions per the GCC FSM.
        self.state = match (self.state, usage) {
            (_, BandwidthUsage::Overusing) => RateControlState::Decrease,
            (RateControlState::Decrease, BandwidthUsage::Normal) => RateControlState::Hold,
            (RateControlState::Hold, BandwidthUsage::Normal) => RateControlState::Increase,
            // Hold while under-using: queues are draining.
            (_, BandwidthUsage::Underusing) => RateControlState::Hold,
            (s, _) => s,
        };

        let dt = self
            .last_rate_update
            .map(|t| now.saturating_since(t))
            .unwrap_or(SimDuration::from_millis(100))
            .min(SimDuration::from_secs(1));
        self.last_rate_update = Some(now);

        match self.state {
            RateControlState::Increase => {
                // Multiplicative increase: up to 8%/s scaled by dt.
                let factor = 1.0 + 0.08 * dt.as_secs_f64().min(1.0);
                self.estimate = self.estimate.mul_f64(factor);
            }
            RateControlState::Decrease => {
                let incoming = self.incoming_rate(now);
                let base = if incoming > Bandwidth::ZERO {
                    incoming
                } else {
                    self.estimate
                };
                self.estimate = base.mul_f64(BETA);
            }
            RateControlState::Hold => {}
        }
        self.estimate = self.estimate.max(self.floor).min(self.ceil);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> DelayBasedEstimator {
        DelayBasedEstimator::new(
            Bandwidth::from_kbps(1000),
            Bandwidth::from_kbps(50),
            Bandwidth::from_mbps(20),
        )
    }

    #[test]
    fn trendline_detects_positive_slope() {
        let mut t = TrendlineEstimator::new();
        let mut slope = 0.0;
        for i in 0..30 {
            // Each group arrives 1 ms later than it departed relative to the
            // previous: steadily building queue.
            slope = t.update(SimTime::from_millis(10 * i), 1.0);
        }
        assert!(slope > 0.0, "slope={slope}");
    }

    #[test]
    fn trendline_flat_for_stable_delay() {
        let mut t = TrendlineEstimator::new();
        let mut slope = 1.0;
        for i in 0..30 {
            slope = t.update(SimTime::from_millis(10 * i), 0.0);
        }
        assert!(slope.abs() < 1e-9, "slope={slope}");
    }

    #[test]
    fn trendline_negative_for_draining_queue() {
        let mut t = TrendlineEstimator::new();
        // First build up...
        for i in 0..10 {
            t.update(SimTime::from_millis(10 * i), 2.0);
        }
        // ...then drain.
        let mut slope = 0.0;
        for i in 10..40 {
            slope = t.update(SimTime::from_millis(10 * i), -2.0);
        }
        assert!(slope < 0.0, "slope={slope}");
    }

    #[test]
    fn detector_flags_sustained_overuse() {
        let mut d = OveruseDetector::new();
        let mut state = BandwidthUsage::Normal;
        for i in 0..50 {
            state = d.detect(SimTime::from_millis(5 * i), 2.0, 60);
        }
        assert_eq!(state, BandwidthUsage::Overusing);
    }

    #[test]
    fn detector_stays_normal_for_small_trend() {
        let mut d = OveruseDetector::new();
        let mut state = BandwidthUsage::Overusing;
        for i in 0..50 {
            state = d.detect(SimTime::from_millis(5 * i), 0.001, 60);
        }
        assert_eq!(state, BandwidthUsage::Normal);
    }

    #[test]
    fn stable_network_grows_estimate() {
        let mut e = est();
        // Packets every 10 ms, arrival = departure + 20 ms fixed: no queue.
        for i in 0..200 {
            let dep = SimTime::from_millis(10 * i);
            let arr = dep + SimDuration::from_millis(20);
            e.on_packet(dep, arr, 1200);
        }
        assert!(
            e.estimate() > Bandwidth::from_kbps(1000),
            "estimate={}",
            e.estimate()
        );
    }

    #[test]
    fn congestion_shrinks_estimate() {
        let mut e = est();
        // Queue builds: each packet's one-way delay grows by 2 ms.
        for i in 0..200 {
            let dep = SimTime::from_millis(10 * i);
            let arr = dep + SimDuration::from_millis(20 + 2 * i);
            e.on_packet(dep, arr, 1200);
        }
        assert!(
            e.estimate() < Bandwidth::from_kbps(1000),
            "estimate={}",
            e.estimate()
        );
        assert_eq!(e.state(), RateControlState::Decrease);
    }

    #[test]
    fn estimate_respects_bounds() {
        let mut e = DelayBasedEstimator::new(
            Bandwidth::from_kbps(100),
            Bandwidth::from_kbps(90),
            Bandwidth::from_kbps(110),
        );
        for i in 0..500 {
            let dep = SimTime::from_millis(10 * i);
            e.on_packet(dep, dep + SimDuration::from_millis(20), 1200);
        }
        assert!(e.estimate() <= Bandwidth::from_kbps(110));
        for i in 500..1000 {
            let dep = SimTime::from_millis(10 * i);
            e.on_packet(dep, dep + SimDuration::from_millis(20 + 3 * (i - 500)), 1200);
        }
        assert!(e.estimate() >= Bandwidth::from_kbps(90));
    }

    #[test]
    fn incoming_rate_measured() {
        let mut e = est();
        // 1200 bytes every 10 ms = 960 kbps.
        let mut now = SimTime::ZERO;
        for i in 0..100 {
            now = SimTime::from_millis(10 * i);
            e.on_packet(now, now + SimDuration::from_millis(5), 1200);
        }
        let rate = e.incoming_rate(now + SimDuration::from_millis(5));
        let kbps = rate.as_kbps() as f64;
        assert!((kbps - 960.0).abs() < 100.0, "kbps={kbps}");
    }
}
