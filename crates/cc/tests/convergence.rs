//! GCC end-to-end convergence: the estimator against a virtual bottleneck.
//!
//! Feeds the delay-based estimator with arrival times produced by an
//! explicit single-server queue at a fixed capacity — the textbook setup
//! GCC is designed for — and checks that the combined controller
//! converges near (and does not overshoot) the bottleneck.

use livenet_cc::{DelayBasedEstimator, GccSender};
use livenet_types::{Bandwidth, SimDuration, SimTime};

/// Simulate `secs` seconds of a sender at `send_rate` through a
/// `bottleneck` queue; return the receiver-side estimate trajectory.
fn run_queue(
    send_rate: Bandwidth,
    bottleneck: Bandwidth,
    secs: u64,
    est: &mut DelayBasedEstimator,
) -> Vec<(SimTime, Bandwidth)> {
    let pkt = 1200usize;
    let send_gap = SimDuration::from_secs_f64(pkt as f64 * 8.0 / send_rate.as_bps() as f64);
    let service = SimDuration::from_secs_f64(pkt as f64 * 8.0 / bottleneck.as_bps() as f64);
    let base_delay = SimDuration::from_millis(20);

    let mut trajectory = Vec::new();
    let mut depart = SimTime::ZERO;
    let mut queue_free_at = SimTime::ZERO;
    let end = SimTime::from_secs(secs);
    while depart < end {
        let start_service = depart.max(queue_free_at);
        queue_free_at = start_service + service;
        let arrival = queue_free_at + base_delay;
        est.on_packet(depart, arrival, pkt);
        trajectory.push((depart, est.estimate()));
        depart += send_gap;
    }
    trajectory
}

#[test]
fn overload_drives_estimate_down_to_bottleneck() {
    let mut est = DelayBasedEstimator::new(
        Bandwidth::from_kbps(4_000),
        Bandwidth::from_kbps(100),
        Bandwidth::from_mbps(20),
    );
    // Sending 4 Mbps through a 2 Mbps bottleneck: queue grows, the
    // over-use detector fires, the AIMD controller backs off.
    let tr = run_queue(
        Bandwidth::from_kbps(4_000),
        Bandwidth::from_kbps(2_000),
        10,
        &mut est,
    );
    let last = tr.last().expect("samples").1;
    assert!(
        last < Bandwidth::from_kbps(3_000),
        "estimate failed to back off: {last}"
    );
}

#[test]
fn underload_lets_estimate_grow() {
    let mut est = DelayBasedEstimator::new(
        Bandwidth::from_kbps(800),
        Bandwidth::from_kbps(100),
        Bandwidth::from_mbps(20),
    );
    // 800 kbps through a 10 Mbps bottleneck: no queueing, steady growth.
    let tr = run_queue(
        Bandwidth::from_kbps(800),
        Bandwidth::from_mbps(10),
        10,
        &mut est,
    );
    let last = tr.last().expect("samples").1;
    assert!(
        last > Bandwidth::from_kbps(1_200),
        "estimate failed to probe upward: {last}"
    );
}

#[test]
fn combined_sender_respects_both_signals() {
    let mut sender = GccSender::new(
        Bandwidth::from_kbps(2_000),
        Bandwidth::from_kbps(100),
        Bandwidth::from_mbps(20),
    );
    // Clean reports let the loss-based side grow…
    let mut now = SimTime::ZERO;
    for _ in 0..10 {
        now += SimDuration::from_millis(500);
        sender.on_loss_report(now, 0.0);
    }
    let grown = sender.pacing_rate();
    assert!(grown > Bandwidth::from_kbps(2_000));
    // …but a low REMB caps the pacing rate immediately.
    sender.on_remb(Bandwidth::from_kbps(900));
    assert_eq!(sender.pacing_rate(), Bandwidth::from_kbps(900));
    // And heavy loss pulls the loss-based side below the REMB.
    for _ in 0..20 {
        now += SimDuration::from_millis(500);
        sender.on_loss_report(now, 0.3);
    }
    assert!(sender.pacing_rate() < Bandwidth::from_kbps(900));
}

#[test]
fn estimator_recovers_after_congestion_clears() {
    let mut est = DelayBasedEstimator::new(
        Bandwidth::from_kbps(3_000),
        Bandwidth::from_kbps(100),
        Bandwidth::from_mbps(20),
    );
    // Phase 1: overload for 8 s.
    run_queue(
        Bandwidth::from_kbps(3_000),
        Bandwidth::from_kbps(1_500),
        8,
        &mut est,
    );
    let after_congestion = est.estimate();
    // Phase 2: the bottleneck clears (plenty of capacity) for 20 s.
    run_queue(
        Bandwidth::from_kbps(1_000),
        Bandwidth::from_mbps(10),
        20,
        &mut est,
    );
    assert!(
        est.estimate() > after_congestion,
        "no recovery: {} -> {}",
        after_congestion,
        est.estimate()
    );
}
