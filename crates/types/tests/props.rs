//! Property-based tests for the core vocabulary types.

use livenet_types::{Bandwidth, DetRng, Ecdf, OnlineStats, SeqNo, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Serial-number arithmetic: add then distance inverts (within range).
    #[test]
    fn seqno_add_distance_roundtrip(base: u16, step in 0u16..0x7FFF) {
        let a = SeqNo(base);
        let b = a.add(step);
        prop_assert_eq!(b.distance(a), i32::from(step));
        prop_assert_eq!(a.distance(b), -i32::from(step));
    }

    /// newer_than is antisymmetric for distinct, in-range values.
    #[test]
    fn seqno_newer_than_antisymmetric(base: u16, step in 1u16..0x7FFF) {
        let a = SeqNo(base);
        let b = a.add(step);
        prop_assert!(b.newer_than(a));
        prop_assert!(!a.newer_than(b));
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn ecdf_quantiles_monotone(mut xs in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut e = Ecdf::new();
        e.extend(xs.iter().copied());
        let qs: Vec<f64> = (0..=10).map(|i| e.quantile(i as f64 / 10.0)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(qs[0], xs[0]);
        prop_assert_eq!(qs[10], *xs.last().unwrap());
    }

    /// CDF is a valid distribution function: in [0,1], 1 at max.
    #[test]
    fn ecdf_cdf_valid(xs in prop::collection::vec(-1e6f64..1e6, 1..200), probe in -2e6f64..2e6) {
        let mut e = Ecdf::new();
        e.extend(xs.iter().copied());
        let f = e.cdf_at(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.cdf_at(max), 1.0);
    }

    /// OnlineStats merge is equivalent to a single pass.
    #[test]
    fn online_stats_merge_equivalence(
        a in prop::collection::vec(-1e6f64..1e6, 0..100),
        b in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut whole = OnlineStats::new();
        for &x in a.iter().chain(&b) { whole.push(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &a { left.push(x); }
        for &x in &b { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1.0);
        }
    }

    /// Bandwidth: transmission_time and bytes_in are inverse-ish.
    #[test]
    fn bandwidth_roundtrip(kbps in 1u64..10_000_000, bytes in 1usize..10_000_000) {
        let bw = Bandwidth::from_kbps(kbps);
        let t = bw.transmission_time(bytes);
        let back = bw.bytes_in(t);
        // Within rounding of one nanosecond's worth of bytes.
        let tolerance = (kbps as f64 * 1000.0 / 8.0 / 1e9).ceil() as i64 + 1;
        prop_assert!((back as i64 - bytes as i64).abs() <= tolerance,
            "bytes={bytes} back={back} tol={tolerance}");
    }

    /// SimTime arithmetic is consistent.
    #[test]
    fn time_arithmetic(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }

    /// DetRng forks are reproducible and chance() respects bounds.
    #[test]
    fn detrng_reproducible(seed: u64, label in "[a-z]{1,8}") {
        let mut a = DetRng::seed(seed).fork(&label);
        let mut b = DetRng::seed(seed).fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.u64(), b.u64());
        }
        prop_assert!(!a.chance(0.0));
        prop_assert!(a.chance(1.0));
    }

    /// DetRng splits: distinct labels yield reproducible, uncorrelated
    /// sub-streams (the per-shard RNG contract of the fleet runner).
    #[test]
    fn detrng_split_substreams(seed: u64, a in 0u64..10_000, b in 0u64..10_000) {
        prop_assume!(a != b);
        let root = DetRng::seed(seed);
        let mut xa = root.split(a);
        let mut xa2 = root.split(a);
        let mut xb = root.split(b);
        let sa: Vec<u64> = (0..64).map(|_| xa.u64()).collect();
        let sa2: Vec<u64> = (0..64).map(|_| xa2.u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| xb.u64()).collect();
        // Same label → identical stream.
        prop_assert_eq!(&sa, &sa2);
        // Distinct labels → no positionwise collisions in 64 draws (a
        // correlated or offset-shared stream would collide massively).
        let collisions = sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
        prop_assert_eq!(collisions, 0);
        // Both streams look uniform at a coarse level: bit balance of the
        // XOR-fold stays near 32 set bits on average.
        let mean_ones: f64 = sa.iter().map(|v| v.count_ones() as f64).sum::<f64>() / 64.0;
        prop_assert!((20.0..44.0).contains(&mean_ones), "mean ones {mean_ones}");
    }
}
