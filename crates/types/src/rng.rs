//! Deterministic RNG plumbing.
//!
//! Every stochastic component (loss models, workload generators, jitter) takes
//! a [`DetRng`] seeded from the experiment seed, so that whole 20-day fleet
//! simulations replay bit-identically from a single `u64`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic, cheaply-forkable RNG.
///
/// Forking derives a child seed from the parent stream plus a label, so that
/// adding a new consumer of randomness in one component does not perturb the
/// random streams of unrelated components.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Seed a new root stream.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream for component `label`.
    pub fn fork(&self, label: &str) -> DetRng {
        // FNV-1a over the label, mixed with fresh output of the parent clone.
        // Cloning (not advancing) the parent keeps forks order-independent
        // relative to sibling forks created from the same snapshot.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut parent = self.inner.clone();
        let salt: u64 = parent.gen();
        DetRng::seed(h ^ salt.rotate_left(17))
    }

    /// Derive the `label`-th independent sub-stream of this generator.
    ///
    /// Where [`DetRng::fork`] names a child *component* ("workload",
    /// "loss"), `split` numbers child *workers*: shard `i` of a parallel
    /// fleet run draws from `rng.split(i)`. Like `fork`, it snapshots the
    /// parent instead of advancing it, so sibling splits taken from the
    /// same state are order-independent, and the same `(state, label)`
    /// pair always yields the same stream.
    pub fn split(&self, label: u64) -> DetRng {
        let mut parent = self.inner.clone();
        let salt: u64 = parent.gen();
        // SplitMix64 finalizer over the salt mixed with the golden-ratio
        // spaced label: adjacent labels land in unrelated seed regions.
        let mut z = salt ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng::seed(z ^ (z >> 31))
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to [0,1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Standard-normal sample (Box–Muller).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + stddev * z
    }

    /// Log-normal sample parameterized by the mean and stddev of the
    /// *underlying* normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Zipf-like rank sample over `n` items with exponent `s`; returns a rank
    /// in `[0, n)` where rank 0 is the most popular.
    ///
    /// Uses inverse-CDF over the harmonic weights; O(log n) per draw after an
    /// O(n) table build, so callers should prefer [`ZipfTable`] for hot loops.
    pub fn zipf_once(&mut self, n: usize, s: f64) -> usize {
        ZipfTable::new(n, s).sample(self)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.inner.gen_range(0..items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Raw u64.
    pub fn u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

/// Precomputed inverse-CDF table for Zipf sampling.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build a table for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the table is empty (never: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `[0, n)`; rank 0 is most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let root = DetRng::seed(1);
        let mut a = root.fork("loss");
        let mut b = root.fork("workload");
        let same = (0..32).all(|_| a.u64() == b.u64());
        assert!(!same);
    }

    #[test]
    fn forks_are_reproducible() {
        let mut x = DetRng::seed(99).fork("x");
        let mut y = DetRng::seed(99).fork("x");
        for _ in 0..32 {
            assert_eq!(x.u64(), y.u64());
        }
    }

    #[test]
    fn splits_with_different_labels_differ() {
        let root = DetRng::seed(4);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let same = (0..32).all(|_| a.u64() == b.u64());
        assert!(!same);
    }

    #[test]
    fn splits_are_reproducible_and_pure() {
        let root = DetRng::seed(17);
        let mut x = root.split(5);
        let mut y = root.split(5);
        for _ in 0..32 {
            assert_eq!(x.u64(), y.u64());
        }
        // Splitting never advances the parent stream.
        let mut after = root.clone();
        let mut fresh = DetRng::seed(17);
        assert_eq!(after.u64(), fresh.u64());
    }

    #[test]
    fn split_differs_from_fork_root() {
        let root = DetRng::seed(23);
        let mut split0 = root.split(0);
        let mut rootc = root.clone();
        let same = (0..32).all(|_| split0.u64() == rootc.u64());
        assert!(!same);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exp_mean_close() {
        let mut r = DetRng::seed(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let table = ZipfTable::new(100, 1.0);
        let mut r = DetRng::seed(11);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[table.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let table = ZipfTable::new(50, 0.8);
        let total: f64 = (0..50).map(|k| table.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(2);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_mean_close() {
        let mut r = DetRng::seed(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.normal(5.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }
}
