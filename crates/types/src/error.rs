//! Shared error type.

use std::fmt;

/// Errors surfaced by LiveNet components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A wire-format decode failed.
    Decode(String),
    /// An entity (node, stream, link, path) was looked up but does not exist.
    NotFound(String),
    /// A control-plane constraint was violated (overload, hop limit, ...).
    Constraint(String),
    /// The component is in a state that does not permit the operation.
    InvalidState(String),
    /// Capacity exhausted (queue full, cache full, no path available).
    Exhausted(String),
    /// A configuration failed validation before the run could start
    /// (zero capacities, empty topology, impossible shard layout, ...).
    InvalidConfig(String),
    /// An I/O-layer failure reported by a transport driver.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Decode(m) => write!(f, "decode error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Constraint(m) => write!(f, "constraint violated: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Exhausted(m) => write!(f, "exhausted: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across all LiveNet crates.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Shorthand for a decode error.
    pub fn decode(msg: impl Into<String>) -> Self {
        Error::Decode(msg.into())
    }
    /// Shorthand for a not-found error.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }
    /// Shorthand for a constraint violation.
    pub fn constraint(msg: impl Into<String>) -> Self {
        Error::Constraint(msg.into())
    }
    /// Shorthand for an invalid-state error.
    pub fn invalid_state(msg: impl Into<String>) -> Self {
        Error::InvalidState(msg.into())
    }
    /// Shorthand for an exhaustion error.
    pub fn exhausted(msg: impl Into<String>) -> Self {
        Error::Exhausted(msg.into())
    }
    /// Shorthand for a config-validation error.
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        Error::InvalidConfig(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        assert_eq!(
            Error::decode("bad RTP header").to_string(),
            "decode error: bad RTP header"
        );
        assert_eq!(
            Error::not_found("st42").to_string(),
            "not found: st42"
        );
        assert_eq!(
            Error::invalid_config("zero node capacity").to_string(),
            "invalid config: zero node capacity"
        );
    }
}
