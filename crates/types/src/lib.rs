//! Core vocabulary types shared by every LiveNet crate.
//!
//! This crate deliberately has no knowledge of packets, topologies or
//! simulation engines. It only defines:
//!
//! * strongly-typed identifiers ([`NodeId`], [`StreamId`], [`ClientId`], ...),
//! * a nanosecond-precision simulated clock ([`SimTime`], [`SimDuration`]),
//! * bandwidth / bitrate arithmetic ([`Bandwidth`]),
//! * statistics helpers used by the evaluation harness ([`stats`]),
//! * deterministic RNG plumbing ([`rng`]).
//!
//! Everything downstream (the Streaming Brain, the overlay data plane, the
//! emulator, the benchmark harness) is written in terms of these types so that
//! the same protocol cores can be driven either by the discrete-event emulator
//! or by the tokio-based real transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod id;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod time;

pub use error::{Error, Result};
pub use id::{ClientId, LinkId, NodeId, PathId, SeqNo, Ssrc, StreamId};
pub use rate::Bandwidth;
pub use rng::{DetRng, ZipfTable};
pub use stats::{welch_t, Ecdf, OnlineStats, Quantiles};
pub use time::{SimDuration, SimTime};
