//! Strongly-typed identifiers.
//!
//! The paper's control plane indexes everything by IDs: streams are keyed by a
//! unique stream ID in the SIB, nodes by a node ID in the PIB, and viewers by
//! a client ID (Algorithm 1). Newtype wrappers keep those key spaces from
//! being mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Construct from a raw integer.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw integer value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifies one CDN node (a cluster of machines in the paper).
    NodeId,
    "nd"
);
define_id!(
    /// Identifies one live stream. Each simulcast bitrate version of a
    /// broadcast is a distinct stream ID (§5.2 of the paper).
    StreamId,
    "st"
);
define_id!(
    /// Identifies one end client (a viewer or a broadcaster device).
    ClientId,
    "cl"
);
define_id!(
    /// Identifies one directed overlay link between two nodes.
    LinkId,
    "lk"
);
define_id!(
    /// Identifies one computed overlay path in the PIB.
    PathId,
    "pa"
);

/// RTP synchronization source identifier (32 bits on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ssrc(pub u32);

impl fmt::Display for Ssrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ssrc:{:08x}", self.0)
    }
}

/// A 16-bit RTP sequence number with RFC 3550 wrap-around semantics.
///
/// Ordering comparisons use serial-number arithmetic: `a.newer_than(b)` is
/// true when `a` is at most half the sequence space ahead of `b`, which is
/// how the slow path's loss detector decides whether a hole exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeqNo(pub u16);

impl SeqNo {
    /// The first sequence number.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The sequence number immediately after `self`, wrapping at 2^16.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.wrapping_add(1))
    }

    /// The sequence number `n` steps after `self`, wrapping.
    ///
    /// Deliberately not `impl Add`: this is serial-number arithmetic, and
    /// an operator would read as plain integer addition.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u16) -> SeqNo {
        SeqNo(self.0.wrapping_add(n))
    }

    /// Signed distance from `other` to `self` in serial-number arithmetic.
    ///
    /// Positive when `self` is newer than `other`. The result is exact for
    /// distances up to half the sequence space (32767).
    #[must_use]
    pub fn distance(self, other: SeqNo) -> i32 {
        let diff = self.0.wrapping_sub(other.0);
        if diff < 0x8000 {
            i32::from(diff)
        } else {
            i32::from(diff) - 0x1_0000
        }
    }

    /// True when `self` is strictly newer than `other` (serial arithmetic).
    #[must_use]
    pub fn newer_than(self, other: SeqNo) -> bool {
        self.distance(other) > 0
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u16> for SeqNo {
    fn from(raw: u16) -> Self {
        SeqNo(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_display() {
        let n = NodeId::new(7);
        let s = StreamId::new(7);
        assert_eq!(n.to_string(), "nd7");
        assert_eq!(s.to_string(), "st7");
        assert_eq!(n.raw(), s.raw());
    }

    #[test]
    fn seqno_next_wraps() {
        assert_eq!(SeqNo(u16::MAX).next(), SeqNo(0));
        assert_eq!(SeqNo(41).next(), SeqNo(42));
    }

    #[test]
    fn seqno_distance_without_wrap() {
        assert_eq!(SeqNo(10).distance(SeqNo(4)), 6);
        assert_eq!(SeqNo(4).distance(SeqNo(10)), -6);
        assert_eq!(SeqNo(4).distance(SeqNo(4)), 0);
    }

    #[test]
    fn seqno_distance_across_wrap() {
        assert_eq!(SeqNo(2).distance(SeqNo(u16::MAX)), 3);
        assert_eq!(SeqNo(u16::MAX).distance(SeqNo(2)), -3);
    }

    #[test]
    fn seqno_newer_than_across_wrap() {
        assert!(SeqNo(1).newer_than(SeqNo(u16::MAX)));
        assert!(!SeqNo(u16::MAX).newer_than(SeqNo(1)));
        assert!(!SeqNo(5).newer_than(SeqNo(5)));
    }

    #[test]
    fn seqno_add_wraps() {
        assert_eq!(SeqNo(u16::MAX).add(2), SeqNo(1));
    }
}
