//! Simulated time.
//!
//! All protocol cores are written against [`SimTime`] rather than
//! `std::time::Instant` so that the same state machines can be driven by the
//! discrete-event emulator (deterministic, seedable) or mapped onto wall-clock
//! time by the tokio transport.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximal span; used as a sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }
    /// Construct from fractional milliseconds (negative values clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by a non-negative float, saturating.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// Checked subtraction.
    #[must_use]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimDuration::from_millis(5), SimDuration::from_micros(5000));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_millis(100);
        let d = SimDuration::from_millis(40);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(150));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(30).to_string(), "30.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }
}
