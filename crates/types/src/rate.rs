//! Bandwidth / bitrate arithmetic.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A data rate in bits per second.
///
/// Used both for link capacities in the topology and for encoder bitrates /
/// pacing rates in the data plane.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }
    /// Construct from kilobits per second.
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }
    /// Construct from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }
    /// Construct from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }
    /// Kilobits per second (truncating).
    pub const fn as_kbps(self) -> u64 {
        self.0 / 1_000
    }
    /// Megabits per second as a float.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` bytes at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate, which makes a dead link
    /// absorb traffic forever rather than dividing by zero.
    #[must_use]
    pub fn transmission_time(self, bytes: usize) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let bits = bytes as u128 * 8;
        let ns = bits * 1_000_000_000 / self.0 as u128;
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Bytes that can be sent in `dur` at this rate.
    #[must_use]
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        (self.0 as u128 * dur.as_nanos() as u128 / 8 / 1_000_000_000) as u64
    }

    /// Scale by a non-negative factor.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> Bandwidth {
        Bandwidth((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// Fraction `self / total`, or 0 when `total` is zero.
    #[must_use]
    pub fn fraction_of(self, total: Bandwidth) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// The smaller of two rates.
    #[must_use]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// The larger of two rates.
    #[must_use]
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        debug_assert!(self.0 >= rhs.0, "Bandwidth subtraction went negative");
        Bandwidth(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}kbps", self.as_kbps())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_basic() {
        // 1 Mbps, 125000 bytes = 1 Mbit -> exactly 1 second.
        let bw = Bandwidth::from_mbps(1);
        assert_eq!(bw.transmission_time(125_000), SimDuration::from_secs(1));
    }

    #[test]
    fn transmission_time_zero_rate_is_max() {
        assert_eq!(Bandwidth::ZERO.transmission_time(1), SimDuration::MAX);
    }

    #[test]
    fn bytes_in_inverts_transmission_time() {
        let bw = Bandwidth::from_mbps(8);
        let dur = bw.transmission_time(10_000);
        let bytes = bw.bytes_in(dur);
        assert!((bytes as i64 - 10_000).abs() <= 1, "bytes={bytes}");
    }

    #[test]
    fn fraction_of_handles_zero_total() {
        assert_eq!(Bandwidth::from_mbps(1).fraction_of(Bandwidth::ZERO), 0.0);
        let half = Bandwidth::from_mbps(5).fraction_of(Bandwidth::from_mbps(10));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Bandwidth::from_gbps(2).to_string(), "2.00Gbps");
        assert_eq!(Bandwidth::from_mbps(3).to_string(), "3.00Mbps");
        assert_eq!(Bandwidth::from_kbps(64).to_string(), "64kbps");
    }
}
