//! Statistics helpers used by the evaluation harness.
//!
//! The paper reports medians, percentile boxes (Fig. 11/12), CDFs (Fig. 8a)
//! and ratios. These helpers compute exactly those summaries.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }
    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact empirical CDF / quantile estimator over stored samples.
///
/// Stores all samples; fine for the evaluation harness where sample counts are
/// bounded (≤ a few million f64s).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ecdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Ecdf {
    /// Empty distribution.
    pub fn new() -> Self {
        Ecdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Add many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        self.samples.extend(xs);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in Ecdf"));
            self.sorted = true;
        }
    }

    /// Quantile `q` in [0, 1] by the nearest-rank method
    /// (`⌈q·n⌉`-th smallest); NaN when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let n = self.samples.len();
        let rank = (q * n as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(n - 1)]
    }

    /// Median (quantile 0.5).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x` (the CDF evaluated at `x`).
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// Evaluate the CDF at each of `points`, returning (x, F(x)) pairs.
    pub fn cdf_series(&mut self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.cdf_at(x))).collect()
    }

    /// Mean of the samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Extract the paper's box-plot summary (Fig. 11): 20/25/50/75/80th pcrt.
    pub fn box5(&mut self) -> Quantiles {
        Quantiles {
            p20: self.quantile(0.20),
            p25: self.quantile(0.25),
            p50: self.quantile(0.50),
            p75: self.quantile(0.75),
            p80: self.quantile(0.80),
        }
    }

    /// Merge another distribution into this one.
    pub fn merge(&mut self, other: &Ecdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// The five percentiles the paper's box plots report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// 20th percentile.
    pub p20: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 80th percentile.
    pub p80: f64,
}

impl std::fmt::Display for Quantiles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p20={:.1} p25={:.1} p50={:.1} p75={:.1} p80={:.1}",
            self.p20, self.p25, self.p50, self.p75, self.p80
        )
    }
}

/// Two-sample Welch t-test statistic; returns `(t, approximately_significant)`.
///
/// The paper reports p < 0.001 for the LiveNet-vs-Hier comparison (§6.2). We
/// flag significance when |t| exceeds 3.3 (two-sided p < 0.001 for large df),
/// which is the regime all our experiments operate in.
pub fn welch_t(a: &OnlineStats, b: &OnlineStats) -> (f64, bool) {
    if a.count() < 2 || b.count() < 2 {
        return (0.0, false);
    }
    let va = a.variance() / a.count() as f64;
    let vb = b.variance() / b.count() as f64;
    let denom = (va + vb).sqrt();
    if denom == 0.0 {
        return (0.0, false);
    }
    let t = (a.mean() - b.mean()) / denom;
    (t, t.abs() > 3.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn ecdf_quantiles() {
        let mut e = Ecdf::new();
        e.extend((1..=100).map(|i| i as f64));
        assert_eq!(e.median(), 50.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert!((e.cdf_at(25.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ecdf_box5_ordering() {
        let mut e = Ecdf::new();
        e.extend((0..1000).map(|i| (i as f64 * 7.3) % 100.0));
        let b = e.box5();
        assert!(b.p20 <= b.p25 && b.p25 <= b.p50 && b.p50 <= b.p75 && b.p75 <= b.p80);
    }

    #[test]
    fn welch_t_detects_difference() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..1000 {
            a.push(100.0 + (i % 10) as f64);
            b.push(200.0 + (i % 10) as f64);
        }
        let (t, sig) = welch_t(&b, &a);
        assert!(t > 100.0);
        assert!(sig);
    }

    #[test]
    fn welch_t_same_distribution_not_significant() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..1000 {
            a.push((i % 17) as f64);
            b.push((i % 17) as f64);
        }
        let (_, sig) = welch_t(&a, &b);
        assert!(!sig);
    }
}
