//! Property-based tests for the routing algorithms.

use livenet_brain::{dijkstra, link_weight, sigmoid_factor, yen_ksp, WeightedGraph, WeightParams};
use livenet_types::{NodeId, SimDuration};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random connected-ish digraph: n nodes, each with edges to a random
/// subset of others.
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (3usize..10, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = livenet_types::DetRng::seed(seed);
        let ids: Vec<NodeId> = (0..n as u64).map(NodeId::new).collect();
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b && rng.chance(0.6) {
                    edges.push((
                        ids[a],
                        ids[b],
                        rng.range_f64(1.0, 100.0),
                    ));
                }
            }
        }
        WeightedGraph::new(ids, edges)
    })
}

proptest! {
    /// Yen's K paths: sorted by cost, loopless, distinct, within hop bound,
    /// and the first equals Dijkstra's answer.
    #[test]
    fn yen_invariants(g in arb_graph(), k in 1usize..5, max_hops in 1usize..5) {
        let n = g.len();
        for src in 0..n.min(3) {
            for dst in 0..n {
                if src == dst { continue; }
                let paths = yen_ksp(&g, src, dst, k, max_hops);
                prop_assert!(paths.len() <= k);
                for w in paths.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0 + 1e-9);
                }
                let mut seen = HashSet::new();
                for (cost, p) in &paths {
                    prop_assert!(p.len() - 1 <= max_hops, "hop bound");
                    prop_assert_eq!(p[0], src);
                    prop_assert_eq!(*p.last().unwrap(), dst);
                    let set: HashSet<usize> = p.iter().copied().collect();
                    prop_assert_eq!(set.len(), p.len(), "loopless");
                    prop_assert!(seen.insert(p.clone()), "distinct");
                    prop_assert!(cost.is_finite() && *cost >= 0.0);
                }
                let best = dijkstra(&g, src, dst, &HashSet::new(), &HashSet::new(), max_hops);
                match (paths.first(), best) {
                    (Some((c, p)), Some((bc, bp))) => {
                        prop_assert!((c - bc).abs() < 1e-9, "yen best != dijkstra");
                        prop_assert_eq!(p, &bp);
                    }
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "reachability mismatch {a:?} vs {b:?}"),
                }
            }
        }
    }

    /// The weight function is monotone in every argument and ≥ RTT.
    #[test]
    fn weight_monotone(
        rtt_ms in 1u64..500,
        loss in 0.0f64..0.5,
        util in 0.0f64..1.0,
        d_rtt in 1u64..100,
        d_loss in 0.0f64..0.3,
        d_util in 0.0f64..0.5,
    ) {
        let p = WeightParams::default();
        let rtt = SimDuration::from_millis(rtt_ms);
        let base = link_weight(rtt, loss, util, p);
        prop_assert!(base >= rtt.as_millis_f64() * 0.999);
        prop_assert!(link_weight(SimDuration::from_millis(rtt_ms + d_rtt), loss, util, p) >= base);
        prop_assert!(link_weight(rtt, (loss + d_loss).min(1.0), util, p) >= base - 1e-9);
        prop_assert!(link_weight(rtt, loss, (util + d_util).min(1.0), p) >= base - 1e-9);
    }

    /// The sigmoid stays in (1, 2) and is monotone.
    #[test]
    fn sigmoid_bounds(u in 0.0f64..1.0, du in 0.0f64..1.0) {
        let p = WeightParams::default();
        let f = sigmoid_factor(u, p);
        prop_assert!((1.0..=2.0).contains(&f));
        prop_assert!(sigmoid_factor((u + du).min(1.0), p) >= f - 1e-12);
    }
}
