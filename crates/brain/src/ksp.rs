//! Dijkstra and Yen's K-shortest-paths over a weighted overlay graph.
//!
//! The Global Routing module finds the k = 3 shortest paths between every
//! pair of nodes (paper §4.3, citing Eppstein's KSP problem; production
//! systems commonly use Yen's algorithm, which we implement here — simple,
//! loopless, exact).

use livenet_types::NodeId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A dense weighted digraph view used by the routing algorithms.
///
/// Node indices are positions in `ids`; adjacency holds `(neighbor, weight)`
/// in deterministic order.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    /// Node IDs by index.
    pub ids: Vec<NodeId>,
    /// Index of each node ID.
    pub index: HashMap<NodeId, usize>,
    /// Out-adjacency: `adj[u] = [(v, w), ...]`.
    pub adj: Vec<Vec<(usize, f64)>>,
}

impl WeightedGraph {
    /// Build from an edge list; nodes are taken from `ids` (deduped order).
    pub fn new(ids: Vec<NodeId>, edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> Self {
        let index: HashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut adj = vec![Vec::new(); ids.len()];
        for (f, t, w) in edges {
            let (Some(&fi), Some(&ti)) = (index.get(&f), index.get(&t)) else {
                continue;
            };
            debug_assert!(w.is_finite() && w >= 0.0, "bad edge weight {w}");
            adj[fi].push((ti, w));
        }
        WeightedGraph { ids, index, adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: usize,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; tie-break on node index for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

/// Dijkstra from `src` to `dst` with optional banned nodes/edges.
///
/// Returns `(total_cost, node_index_path)` or `None` when unreachable.
/// `max_hops` bounds the number of edges on the returned path (the paper's
/// 3-hop constraint is applied during search to avoid discarding later).
pub fn dijkstra(
    g: &WeightedGraph,
    src: usize,
    dst: usize,
    banned_nodes: &HashSet<usize>,
    banned_edges: &HashSet<(usize, usize)>,
    max_hops: usize,
) -> Option<(f64, Vec<usize>)> {
    if banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
        return None;
    }
    if src == dst {
        return Some((0.0, vec![src]));
    }
    // State space is (node, hops) because of the hop bound: a longer-hop
    // cheaper path must not shadow a shorter-hop costlier one.
    let n = g.len();
    let mut best = vec![f64::INFINITY; n * (max_hops + 1)];
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; n * (max_hops + 1)];
    let idx = |node: usize, hops: usize| hops * n + node;

    let mut heap = BinaryHeap::new();
    best[idx(src, 0)] = 0.0;
    heap.push((HeapItem { cost: 0.0, node: src }, 0usize));

    let mut best_dst: Option<(f64, usize)> = None; // (cost, hops)
    while let Some((HeapItem { cost, node }, hops)) = heap.pop() {
        if cost > best[idx(node, hops)] {
            continue;
        }
        if node == dst {
            match best_dst {
                Some((c, _)) if c <= cost => {}
                _ => best_dst = Some((cost, hops)),
            }
            continue;
        }
        if hops == max_hops {
            continue;
        }
        for &(next, w) in &g.adj[node] {
            if banned_nodes.contains(&next) || banned_edges.contains(&(node, next)) {
                continue;
            }
            let nc = cost + w;
            // Prune: can't beat the best complete path already found.
            if let Some((c, _)) = best_dst {
                if nc >= c {
                    continue;
                }
            }
            let slot = idx(next, hops + 1);
            if nc < best[slot] {
                best[slot] = nc;
                prev[slot] = Some((node, hops));
                heap.push((HeapItem { cost: nc, node: next }, hops + 1));
            }
        }
    }

    let (cost, hops) = best_dst?;
    // Reconstruct.
    let mut path = vec![dst];
    let mut cur = (dst, hops);
    while cur.0 != src || cur.1 != 0 {
        let Some(p) = prev[idx(cur.0, cur.1)] else {
            return None; // shouldn't happen
        };
        path.push(p.0);
        cur = p;
    }
    path.reverse();
    Some((cost, path))
}

/// Yen's K shortest loopless paths from `src` to `dst`.
///
/// Returns up to `k` paths, each `(cost, node_index_path)`, sorted by cost.
/// All paths respect `max_hops`.
pub fn yen_ksp(
    g: &WeightedGraph,
    src: usize,
    dst: usize,
    k: usize,
    max_hops: usize,
) -> Vec<(f64, Vec<usize>)> {
    let empty_nodes = HashSet::new();
    let empty_edges = HashSet::new();
    let Some(first) = dijkstra(g, src, dst, &empty_nodes, &empty_edges, max_hops) else {
        return Vec::new();
    };
    let mut paths: Vec<(f64, Vec<usize>)> = vec![first];
    let mut candidates: Vec<(f64, Vec<usize>)> = Vec::new();

    while paths.len() < k {
        let last = paths.last().expect("at least one path").1.clone();
        // For each spur node in the previous shortest path...
        for i in 0..last.len() - 1 {
            let spur = last[i];
            let root = &last[..=i];
            let root_cost: f64 = root
                .windows(2)
                .map(|w| edge_weight(g, w[0], w[1]))
                .sum();

            // Ban edges used by already-found paths sharing this root.
            let mut banned_edges = HashSet::new();
            for (_, p) in &paths {
                if p.len() > i && p[..=i] == *root {
                    if let (Some(&a), Some(&b)) = (p.get(i), p.get(i + 1)) {
                        banned_edges.insert((a, b));
                    }
                }
            }
            for (_, p) in &candidates {
                if p.len() > i && p[..=i] == *root {
                    if let (Some(&a), Some(&b)) = (p.get(i), p.get(i + 1)) {
                        banned_edges.insert((a, b));
                    }
                }
            }
            // Ban root nodes except the spur (looplessness).
            let banned_nodes: HashSet<usize> = root[..i].iter().copied().collect();

            let remaining_hops = max_hops.saturating_sub(i);
            if remaining_hops == 0 {
                continue;
            }
            if let Some((spur_cost, spur_path)) =
                dijkstra(g, spur, dst, &banned_nodes, &banned_edges, remaining_hops)
            {
                let mut total: Vec<usize> = root[..i].to_vec();
                total.extend(spur_path);
                let cost = root_cost + spur_cost;
                if !paths.iter().any(|(_, p)| *p == total)
                    && !candidates.iter().any(|(_, p)| *p == total)
                {
                    candidates.push((cost, total));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Take the cheapest candidate (deterministic tie-break on the path).
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        paths.push(candidates.remove(0));
    }
    paths
}

fn edge_weight(g: &WeightedGraph, a: usize, b: usize) -> f64 {
    g.adj[a]
        .iter()
        .find(|(n, _)| *n == b)
        .map(|(_, w)| *w)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }

    /// Classic Yen example graph (C→H, from the Wikipedia illustration).
    fn yen_graph() -> WeightedGraph {
        // Nodes: C=0, D=1, E=2, F=3, G=4, H=5
        let ids: Vec<NodeId> = (0..6).map(nid).collect();
        let edges = vec![
            (nid(0), nid(1), 3.0), // C-D
            (nid(0), nid(2), 2.0), // C-E
            (nid(1), nid(3), 4.0), // D-F
            (nid(2), nid(1), 1.0), // E-D
            (nid(2), nid(3), 2.0), // E-F
            (nid(2), nid(4), 3.0), // E-G
            (nid(3), nid(4), 2.0), // F-G
            (nid(3), nid(5), 1.0), // F-H
            (nid(4), nid(5), 2.0), // G-H
        ];
        WeightedGraph::new(ids, edges)
    }

    #[test]
    fn dijkstra_finds_shortest() {
        let g = yen_graph();
        let (cost, path) = dijkstra(&g, 0, 5, &HashSet::new(), &HashSet::new(), 10).unwrap();
        assert_eq!(cost, 5.0);
        assert_eq!(path, vec![0, 2, 3, 5]); // C-E-F-H
    }

    #[test]
    fn dijkstra_respects_hop_limit() {
        let g = yen_graph();
        // Max 2 hops: C-E-F-H (3 hops) is out; C-D-F? that's 2 hops to F,
        // then no. No 2-hop path to H exists... C-E-G? then H needs 3.
        let r = dijkstra(&g, 0, 5, &HashSet::new(), &HashSet::new(), 2);
        assert!(r.is_none());
        let (cost, path) = dijkstra(&g, 0, 5, &HashSet::new(), &HashSet::new(), 3).unwrap();
        assert_eq!(path.len() - 1, 3);
        assert_eq!(cost, 5.0);
    }

    #[test]
    fn dijkstra_banned_node() {
        let g = yen_graph();
        let banned: HashSet<usize> = [2].into_iter().collect(); // ban E
        let (cost, path) = dijkstra(&g, 0, 5, &banned, &HashSet::new(), 10).unwrap();
        assert_eq!(path, vec![0, 1, 3, 5]); // C-D-F-H
        assert_eq!(cost, 8.0);
    }

    #[test]
    fn dijkstra_unreachable() {
        let ids: Vec<NodeId> = (0..2).map(nid).collect();
        let g = WeightedGraph::new(ids, vec![]);
        assert!(dijkstra(&g, 0, 1, &HashSet::new(), &HashSet::new(), 5).is_none());
    }

    #[test]
    fn dijkstra_src_equals_dst() {
        let g = yen_graph();
        let (cost, path) = dijkstra(&g, 3, 3, &HashSet::new(), &HashSet::new(), 5).unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(path, vec![3]);
    }

    #[test]
    fn yen_matches_known_k3() {
        // The canonical result: C-E-F-H (5), C-E-G-H (7), C-D-F-H (8).
        let g = yen_graph();
        let paths = yen_ksp(&g, 0, 5, 3, 10);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0], (5.0, vec![0, 2, 3, 5]));
        assert_eq!(paths[1], (7.0, vec![0, 2, 4, 5]));
        assert_eq!(paths[2], (8.0, vec![0, 1, 3, 5]));
    }

    #[test]
    fn yen_paths_are_loopless_and_distinct() {
        let g = yen_graph();
        let paths = yen_ksp(&g, 0, 5, 5, 10);
        for (i, (_, p)) in paths.iter().enumerate() {
            let set: HashSet<usize> = p.iter().copied().collect();
            assert_eq!(set.len(), p.len(), "loop in path {p:?}");
            for (j, (_, q)) in paths.iter().enumerate() {
                if i != j {
                    assert_ne!(p, q);
                }
            }
        }
    }

    #[test]
    fn yen_costs_nondecreasing() {
        let g = yen_graph();
        let paths = yen_ksp(&g, 0, 5, 5, 10);
        for w in paths.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn yen_respects_hop_limit() {
        let g = yen_graph();
        let paths = yen_ksp(&g, 0, 5, 5, 3);
        assert!(!paths.is_empty());
        for (_, p) in &paths {
            assert!(p.len() - 1 <= 3, "path {p:?} exceeds hop limit");
        }
    }

    #[test]
    fn hop_bounded_beats_greedy_when_cheap_path_is_long() {
        // src -0.1-> a -0.1-> b -0.1-> c -0.1-> dst  (cost 0.4, 4 hops)
        // src -----------1.0-----------> dst          (cost 1.0, 1 hop)
        let ids: Vec<NodeId> = (0..6).map(nid).collect();
        let edges = vec![
            (nid(0), nid(1), 0.1),
            (nid(1), nid(2), 0.1),
            (nid(2), nid(3), 0.1),
            (nid(3), nid(5), 0.1),
            (nid(0), nid(5), 1.0),
        ];
        let g = WeightedGraph::new(ids, edges);
        let (cost, path) = dijkstra(&g, 0, 5, &HashSet::new(), &HashSet::new(), 3).unwrap();
        assert_eq!(path, vec![0, 5]);
        assert_eq!(cost, 1.0);
        let (cost4, _) = dijkstra(&g, 0, 5, &HashSet::new(), &HashSet::new(), 4).unwrap();
        assert!((cost4 - 0.4).abs() < 1e-9);
    }
}
