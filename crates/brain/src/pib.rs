//! The Path Information Base (PIB) and Stream Information Base (SIB).
//!
//! Both are hash tables (paper §4.4): the SIB maps stream ID → producer
//! node; the PIB maps (producer, consumer) → candidate paths ordered by
//! preference. "As both information bases are built on hash tables, the
//! path lookup takes only a few milliseconds."

use livenet_types::{NodeId, SimTime, StreamId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One computed overlay path: the node sequence from producer to consumer
/// (inclusive), with its abstracted weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayPath {
    /// Nodes from producer (first) to consumer (last).
    pub nodes: Vec<NodeId>,
    /// Abstracted weight (Eq. 2 sum) at computation time, in ms.
    pub weight: f64,
    /// When Global Routing computed the path.
    pub computed_at: SimTime,
    /// True when this is a reserved last-resort path (§4.3).
    pub last_resort: bool,
}

impl OverlayPath {
    /// Number of overlay hops (links). 0 when producer == consumer.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Producer end.
    pub fn producer(&self) -> NodeId {
        *self.nodes.first().expect("non-empty path")
    }

    /// Consumer end.
    pub fn consumer(&self) -> NodeId {
        *self.nodes.last().expect("non-empty path")
    }

    /// True when the path traverses `node`.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// True when the path traverses the directed link `from → to`.
    pub fn contains_link(&self, from: NodeId, to: NodeId) -> bool {
        self.nodes.windows(2).any(|w| w[0] == from && w[1] == to)
    }
}

/// The Path Information Base.
#[derive(Debug, Clone, Default)]
pub struct Pib {
    paths: HashMap<(NodeId, NodeId), Vec<OverlayPath>>,
}

impl Pib {
    /// Empty PIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace all entries with a fresh Global Routing output.
    pub fn replace_all(&mut self, entries: HashMap<(NodeId, NodeId), Vec<OverlayPath>>) {
        self.paths = entries;
    }

    /// Install/replace the candidate list for one pair.
    pub fn insert(&mut self, src: NodeId, dst: NodeId, paths: Vec<OverlayPath>) {
        self.paths.insert((src, dst), paths);
    }

    /// Candidate paths for a pair, best first.
    pub fn lookup(&self, src: NodeId, dst: NodeId) -> Option<&[OverlayPath]> {
        self.paths.get(&(src, dst)).map(Vec::as_slice)
    }

    /// Number of pairs with entries.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when the PIB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Total number of stored paths.
    pub fn total_paths(&self) -> usize {
        self.paths.values().map(Vec::len).sum()
    }

    /// Invalidate (remove) every path traversing `node` (overload alarm).
    /// Returns the number of paths removed.
    pub fn invalidate_node(&mut self, node: NodeId) -> usize {
        let mut removed = 0;
        for paths in self.paths.values_mut() {
            let before = paths.len();
            paths.retain(|p| !p.contains_node(node));
            removed += before - paths.len();
        }
        removed
    }

    /// Invalidate every path traversing the directed link `from → to`.
    pub fn invalidate_link(&mut self, from: NodeId, to: NodeId) -> usize {
        let mut removed = 0;
        for paths in self.paths.values_mut() {
            let before = paths.len();
            paths.retain(|p| !p.contains_link(from, to));
            removed += before - paths.len();
        }
        removed
    }

    /// Iterate all (pair, paths).
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &Vec<OverlayPath>)> {
        self.paths.iter()
    }
}

/// The Stream Information Base: stream ID → producer node.
#[derive(Debug, Clone, Default)]
pub struct Sib {
    streams: HashMap<StreamId, NodeId>,
}

impl Sib {
    /// Empty SIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new stream at its producer (stream upload request, §4.1).
    pub fn register(&mut self, stream: StreamId, producer: NodeId) {
        self.streams.insert(stream, producer);
    }

    /// Remove a finished stream.
    pub fn unregister(&mut self, stream: StreamId) -> Option<NodeId> {
        self.streams.remove(&stream)
    }

    /// Producer of a stream.
    pub fn producer_of(&self, stream: StreamId) -> Option<NodeId> {
        self.streams.get(&stream).copied()
    }

    /// Number of active streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// All active streams.
    pub fn iter(&self) -> impl Iterator<Item = (StreamId, NodeId)> + '_ {
        self.streams.iter().map(|(&s, &n)| (s, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[u64], weight: f64) -> OverlayPath {
        OverlayPath {
            nodes: nodes.iter().map(|&n| NodeId::new(n)).collect(),
            weight,
            computed_at: SimTime::ZERO,
            last_resort: false,
        }
    }

    #[test]
    fn hops_counts_links() {
        assert_eq!(path(&[1], 0.0).hops(), 0);
        assert_eq!(path(&[1, 2], 1.0).hops(), 1);
        assert_eq!(path(&[1, 2, 3], 2.0).hops(), 2);
    }

    #[test]
    fn contains_link_is_directed() {
        let p = path(&[1, 2, 3], 2.0);
        assert!(p.contains_link(NodeId::new(1), NodeId::new(2)));
        assert!(!p.contains_link(NodeId::new(2), NodeId::new(1)));
        assert!(!p.contains_link(NodeId::new(1), NodeId::new(3)));
    }

    #[test]
    fn pib_lookup_and_replace() {
        let mut pib = Pib::new();
        let a = NodeId::new(1);
        let b = NodeId::new(3);
        pib.insert(a, b, vec![path(&[1, 2, 3], 10.0), path(&[1, 3], 20.0)]);
        assert_eq!(pib.lookup(a, b).unwrap().len(), 2);
        assert!(pib.lookup(b, a).is_none());
        assert_eq!(pib.total_paths(), 2);
    }

    #[test]
    fn invalidate_node_removes_traversing_paths() {
        let mut pib = Pib::new();
        pib.insert(
            NodeId::new(1),
            NodeId::new(3),
            vec![path(&[1, 2, 3], 10.0), path(&[1, 3], 20.0)],
        );
        pib.insert(
            NodeId::new(1),
            NodeId::new(4),
            vec![path(&[1, 2, 4], 12.0)],
        );
        let removed = pib.invalidate_node(NodeId::new(2));
        assert_eq!(removed, 2);
        assert_eq!(pib.lookup(NodeId::new(1), NodeId::new(3)).unwrap().len(), 1);
        assert!(pib.lookup(NodeId::new(1), NodeId::new(4)).unwrap().is_empty());
    }

    #[test]
    fn invalidate_link_is_directed() {
        let mut pib = Pib::new();
        pib.insert(
            NodeId::new(1),
            NodeId::new(3),
            vec![path(&[1, 2, 3], 10.0)],
        );
        assert_eq!(pib.invalidate_link(NodeId::new(2), NodeId::new(1)), 0);
        assert_eq!(pib.invalidate_link(NodeId::new(1), NodeId::new(2)), 1);
    }

    #[test]
    fn sib_register_lookup_unregister() {
        let mut sib = Sib::new();
        let s = StreamId::new(7);
        assert!(sib.producer_of(s).is_none());
        sib.register(s, NodeId::new(2));
        assert_eq!(sib.producer_of(s), Some(NodeId::new(2)));
        assert_eq!(sib.unregister(s), Some(NodeId::new(2)));
        assert!(sib.is_empty());
    }

    #[test]
    fn sib_reregister_moves_producer() {
        // Broadcaster mobility: the stream may re-home (§7.1).
        let mut sib = Sib::new();
        let s = StreamId::new(7);
        sib.register(s, NodeId::new(2));
        sib.register(s, NodeId::new(5));
        assert_eq!(sib.producer_of(s), Some(NodeId::new(5)));
        assert_eq!(sib.len(), 1);
    }
}
