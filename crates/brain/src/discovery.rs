//! Global Discovery (paper §4.2).
//!
//! Collects 1-minute reports from overlay nodes into the [`GlobalView`],
//! and handles *real-time overload alarms*: when a node reports itself or
//! one of its links at ≥ 80% utilization, the corresponding PIB entries are
//! invalidated immediately (without waiting for the 10-minute recompute).

use crate::pib::Pib;
use livenet_topology::{GlobalView, NodeReport, OVERLOAD_TARGET};
use livenet_types::NodeId;
use serde::{Deserialize, Serialize};

/// An overload alarm raised by a node outside the periodic report cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadAlarm {
    /// The node itself crossed the target.
    Node(NodeId),
    /// A directed link crossed the target.
    Link(NodeId, NodeId),
}

/// The Global Discovery module.
#[derive(Debug, Default)]
pub struct GlobalDiscovery {
    view: GlobalView,
    /// Alarms processed (telemetry).
    pub alarms_handled: u64,
    /// Paths invalidated by alarms (telemetry).
    pub paths_invalidated: u64,
}

impl GlobalDiscovery {
    /// Empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// The assembled global view.
    pub fn view(&self) -> &GlobalView {
        &self.view
    }

    /// Absorb a periodic node report. Returns any overload alarms implied
    /// by the report itself (≥ target utilization triggers the same path
    /// invalidation as an explicit alarm).
    pub fn absorb_report(&mut self, report: &NodeReport, pib: &mut Pib) -> Vec<OverloadAlarm> {
        self.view.absorb(report);
        let mut alarms = Vec::new();
        if report.utilization >= OVERLOAD_TARGET {
            alarms.push(OverloadAlarm::Node(report.node));
        }
        for l in &report.links {
            if l.utilization >= OVERLOAD_TARGET {
                alarms.push(OverloadAlarm::Link(report.node, l.to));
            }
        }
        for &alarm in &alarms {
            self.handle_alarm(alarm, pib);
        }
        alarms
    }

    /// Handle an explicit real-time overload alarm: invalidate PIB paths.
    pub fn handle_alarm(&mut self, alarm: OverloadAlarm, pib: &mut Pib) -> usize {
        self.alarms_handled += 1;
        let removed = match alarm {
            OverloadAlarm::Node(n) => pib.invalidate_node(n),
            OverloadAlarm::Link(a, b) => pib.invalidate_link(a, b),
        };
        self.paths_invalidated += removed as u64;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pib::OverlayPath;
    use livenet_topology::LinkReport;
    use livenet_types::{SimDuration, SimTime};

    fn pib_with_paths() -> Pib {
        let mut pib = Pib::new();
        pib.insert(
            NodeId::new(1),
            NodeId::new(3),
            vec![
                OverlayPath {
                    nodes: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
                    weight: 10.0,
                    computed_at: SimTime::ZERO,
                    last_resort: false,
                },
                OverlayPath {
                    nodes: vec![NodeId::new(1), NodeId::new(4), NodeId::new(3)],
                    weight: 12.0,
                    computed_at: SimTime::ZERO,
                    last_resort: false,
                },
            ],
        );
        pib
    }

    fn report(node: u64, util: f64, link_util: f64) -> NodeReport {
        NodeReport {
            node: NodeId::new(node),
            at: SimTime::from_secs(60),
            utilization: util,
            links: vec![LinkReport {
                to: NodeId::new(3),
                rtt: SimDuration::from_millis(20),
                loss: 0.0,
                utilization: link_util,
                from_transport: true,
            }],
        }
    }

    #[test]
    fn healthy_report_raises_no_alarm() {
        let mut d = GlobalDiscovery::new();
        let mut pib = pib_with_paths();
        let alarms = d.absorb_report(&report(2, 0.4, 0.3), &mut pib);
        assert!(alarms.is_empty());
        assert_eq!(pib.total_paths(), 2);
        assert_eq!(d.view().node_utilization(NodeId::new(2)), Some(0.4));
    }

    #[test]
    fn node_overload_invalidates_traversing_paths() {
        let mut d = GlobalDiscovery::new();
        let mut pib = pib_with_paths();
        let alarms = d.absorb_report(&report(2, 0.85, 0.3), &mut pib);
        assert_eq!(alarms, vec![OverloadAlarm::Node(NodeId::new(2))]);
        // Path via node 2 removed; via node 4 kept.
        let remaining = pib.lookup(NodeId::new(1), NodeId::new(3)).unwrap();
        assert_eq!(remaining.len(), 1);
        assert!(remaining[0].contains_node(NodeId::new(4)));
        assert_eq!(d.paths_invalidated, 1);
    }

    #[test]
    fn link_overload_invalidates_directed_link_paths() {
        let mut d = GlobalDiscovery::new();
        let mut pib = pib_with_paths();
        // Node 2 reports link 2→3 overloaded.
        let alarms = d.absorb_report(&report(2, 0.1, 0.9), &mut pib);
        assert_eq!(
            alarms,
            vec![OverloadAlarm::Link(NodeId::new(2), NodeId::new(3))]
        );
        let remaining = pib.lookup(NodeId::new(1), NodeId::new(3)).unwrap();
        assert_eq!(remaining.len(), 1);
    }

    #[test]
    fn explicit_alarm_counts() {
        let mut d = GlobalDiscovery::new();
        let mut pib = pib_with_paths();
        let removed = d.handle_alarm(OverloadAlarm::Node(NodeId::new(4)), &mut pib);
        assert_eq!(removed, 1);
        assert_eq!(d.alarms_handled, 1);
    }
}
