//! The Streaming Brain — LiveNet's logically centralized controller (§4).
//!
//! Four modules, mirroring Fig. 4 of the paper:
//!
//! * [`discovery`] — **Global Discovery**: absorbs 1-minute node reports
//!   into the global view and turns real-time overload alarms into PIB
//!   invalidations;
//! * [`routing`] — **Global Routing**: every 10 minutes, computes the K=3
//!   shortest paths between every pair of nodes over the abstracted link
//!   weights (Eq. 2–3), then filters paths violating the constraints
//!   (≤ 3 hops, no overloaded links/nodes);
//! * [`pib`] — the **Path Information Base** and **Stream Information
//!   Base** hash tables;
//! * [`decision`] — **Path Decision**: serves path lookups from consumer
//!   nodes (Algorithm 1's `GetPath`), falling back to last-resort paths;
//! * [`StreamingBrain`] — the facade tying the modules together, including
//!   stream management and popular-broadcaster path prefetch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brain;
pub mod decision;
pub mod discovery;
pub mod ksp;
pub mod pib;
pub mod routing;
pub mod weight;

pub use brain::{BrainConfig, StreamingBrain};
pub use decision::{PathAssignment, PathDecision, PathLookup};
pub use discovery::GlobalDiscovery;
pub use ksp::{dijkstra, yen_ksp, WeightedGraph};
pub use pib::{OverlayPath, Pib, Sib};
pub use routing::{GlobalRouting, RoutingConfig};
pub use weight::{link_weight, sigmoid_factor, WeightParams};
