//! The abstracted link weight (paper Eq. 2 and Eq. 3).
//!
//! For a link A→B:
//!
//! ```text
//! W_AB = (ρ · 2·RTT_AB + (1 − ρ) · RTT_AB) · f(u_AB)        (Eq. 2)
//! f(u)  = 1 / (1 + e^{α (β − u)}) + 1                        (Eq. 3)
//! ```
//!
//! where ρ is the link's packet loss rate (a lost packet is assumed to be
//! recovered on the second attempt, hence the expected-RTT form), and
//! `u_AB = max(link utilization, A's utilization, B's utilization)`.
//! `f` is a sigmoid ranging from 1 to 2 that inflates the weight of loaded
//! links. The paper uses α = 0.5 and β = 80 with utilization expressed in
//! percent (that parameterization is what makes f span (1, 2)).

use livenet_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the weight function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightParams {
    /// Sigmoid steepness α (paper: 0.5, on percent-scale utilization).
    pub alpha: f64,
    /// Sigmoid midpoint β as a fraction (paper: 80% → 0.80).
    pub beta: f64,
}

impl Default for WeightParams {
    fn default() -> Self {
        WeightParams {
            alpha: 0.5,
            beta: 0.80,
        }
    }
}

/// Eq. 3: the load-adjustment factor in (1, 2).
///
/// `utilization` is a fraction in [0, 1]; internally converted to percent to
/// match the paper's α = 0.5 parameterization.
pub fn sigmoid_factor(utilization: f64, params: WeightParams) -> f64 {
    let u_pct = utilization.clamp(0.0, 1.0) * 100.0;
    let beta_pct = params.beta * 100.0;
    1.0 / (1.0 + (params.alpha * (beta_pct - u_pct)).exp()) + 1.0
}

/// Eq. 2: the abstracted weight of a link, in milliseconds.
///
/// * `rtt` — measured link RTT;
/// * `loss` — packet loss rate ρ in [0, 1];
/// * `max_utilization` — max of link utilization and both endpoints' loads.
pub fn link_weight(
    rtt: SimDuration,
    loss: f64,
    max_utilization: f64,
    params: WeightParams,
) -> f64 {
    let rtt_ms = rtt.as_millis_f64();
    let rho = loss.clamp(0.0, 1.0);
    let expected_rtt = rho * 2.0 * rtt_ms + (1.0 - rho) * rtt_ms;
    expected_rtt * sigmoid_factor(max_utilization, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: WeightParams = WeightParams {
        alpha: 0.5,
        beta: 0.80,
    };

    #[test]
    fn sigmoid_spans_one_to_two() {
        assert!((sigmoid_factor(0.0, P) - 1.0).abs() < 1e-9);
        assert!((sigmoid_factor(1.0, P) - 2.0).abs() < 1e-4);
        assert!((sigmoid_factor(0.80, P) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let f = sigmoid_factor(i as f64 / 100.0, P);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn weight_equals_rtt_when_idle_lossless() {
        let w = link_weight(SimDuration::from_millis(40), 0.0, 0.0, P);
        assert!((w - 40.0).abs() < 1e-6, "w={w}");
    }

    #[test]
    fn loss_inflates_by_expected_retransmission() {
        // ρ=0.5: expected RTT = 0.5*2*40 + 0.5*40 = 60 ms.
        let w = link_weight(SimDuration::from_millis(40), 0.5, 0.0, P);
        assert!((w - 60.0).abs() < 1e-6, "w={w}");
    }

    #[test]
    fn full_load_doubles_weight() {
        let idle = link_weight(SimDuration::from_millis(40), 0.0, 0.0, P);
        let loaded = link_weight(SimDuration::from_millis(40), 0.0, 1.0, P);
        assert!((loaded / idle - 2.0).abs() < 1e-3);
    }

    #[test]
    fn weight_monotone_in_each_argument() {
        let base = link_weight(SimDuration::from_millis(40), 0.01, 0.3, P);
        assert!(link_weight(SimDuration::from_millis(50), 0.01, 0.3, P) > base);
        assert!(link_weight(SimDuration::from_millis(40), 0.05, 0.3, P) > base);
        assert!(link_weight(SimDuration::from_millis(40), 0.01, 0.6, P) > base);
    }
}
