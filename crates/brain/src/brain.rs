//! The Streaming Brain facade.
//!
//! Ties Global Discovery, Global Routing, Path Decision and Stream
//! Management together behind one API, the way Fig. 4 wires the modules:
//! reports flow in, the PIB refreshes every 10 minutes, path requests are
//! served from the PIB with overload filtering, and popular broadcasters
//! get their paths prefetched to all nodes.

use crate::decision::{PathAssignment, PathDecision};
use crate::discovery::{GlobalDiscovery, OverloadAlarm};
use crate::routing::{GlobalRouting, RoutingConfig};
use livenet_telemetry::{ids, MetricSink};
use livenet_topology::{NodeReport, Topology};
use livenet_types::{NodeId, Result, SimDuration, SimTime, StreamId};
use std::collections::BTreeSet;

/// Brain-level configuration.
#[derive(Debug, Clone, Default)]
pub struct BrainConfig {
    /// Routing parameters (K, hop limit, weight params, period).
    pub routing: RoutingConfig,
}

/// The logically centralized controller.
#[derive(Debug)]
pub struct StreamingBrain {
    topology: Topology,
    routing: GlobalRouting,
    discovery: GlobalDiscovery,
    decision: PathDecision,
    popular: BTreeSet<StreamId>,
    last_recompute: Option<SimTime>,
    /// Completed recompute rounds (telemetry).
    pub recompute_rounds: u64,
    /// Producer rehome operations performed (telemetry, §7.1).
    pub rehomes: u64,
    /// KSP path entries computed across all recompute rounds (work proxy).
    pub ksp_paths_computed: u64,
    /// Node-failed notifications processed.
    pub nodes_failed: u64,
    /// Node-recovered notifications processed.
    pub nodes_recovered: u64,
}

impl StreamingBrain {
    /// New brain over an initial topology; computes the first PIB at t=0.
    pub fn new(topology: Topology, config: BrainConfig) -> Self {
        let routing = GlobalRouting::new(config.routing);
        let mut brain = StreamingBrain {
            topology,
            routing,
            discovery: GlobalDiscovery::new(),
            decision: PathDecision::new(),
            popular: BTreeSet::new(),
            last_recompute: None,
            recompute_rounds: 0,
            rehomes: 0,
            ksp_paths_computed: 0,
            nodes_failed: 0,
            nodes_recovered: 0,
        };
        brain.force_recompute(SimTime::ZERO);
        brain
    }

    /// The working topology (the Brain's latest view).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Scoped mutation of the Brain's working topology.
    ///
    /// Runs `f` against the topology, then invalidates the routing state
    /// derived from the old topology by recomputing the PIB in place (at
    /// the last recompute's timestamp, so the 10-minute periodic schedule
    /// is unaffected). This replaces the removed `topology_mut` accessor,
    /// which let callers edit links/nodes while stale paths kept serving.
    pub fn update_topology<R>(&mut self, f: impl FnOnce(&mut Topology) -> R) -> R {
        let out = f(&mut self.topology);
        let at = self.last_recompute.unwrap_or(SimTime::ZERO);
        self.force_recompute(at);
        out
    }

    /// Routing module (constraint predicate, config).
    pub fn routing(&self) -> &GlobalRouting {
        &self.routing
    }

    /// Path Decision module (telemetry counters).
    pub fn decision(&self) -> &PathDecision {
        &self.decision
    }

    /// Discovery module (alarm counters).
    pub fn discovery(&self) -> &GlobalDiscovery {
        &self.discovery
    }

    /// Export the Brain's lifetime counters — the Path Decision log
    /// analogue (§6.1) — into a metric sink.  Counters are cumulative
    /// totals, so record into a sink that has not seen this brain before
    /// (e.g. a per-run [`livenet_telemetry::TelemetryHub`]).
    pub fn record_telemetry(&self, sink: &mut impl MetricSink) {
        sink.add(ids::BRAIN_RECOMPUTE_ROUNDS, self.recompute_rounds);
        sink.add(ids::BRAIN_KSP_PATHS, self.ksp_paths_computed);
        sink.add(ids::BRAIN_REHOMES, self.rehomes);
        sink.add(ids::BRAIN_NODE_FAILED, self.nodes_failed);
        sink.add(ids::BRAIN_NODE_RECOVERED, self.nodes_recovered);
        sink.add(ids::BRAIN_REQUESTS, self.decision.requests_served);
        sink.add(ids::BRAIN_LAST_RESORT, self.decision.last_resort_served);
    }

    /// Absorb one node report: updates the view and the working topology,
    /// and handles any implied overload alarms (PIB invalidation).
    ///
    /// Only the keys the report names are written through to the working
    /// topology — the rest already hold the view's freshest values from
    /// earlier reports, so a full-view replay per report is pure waste
    /// (it dominated fleet-scale profiles at ~57 reports per minute tick).
    pub fn absorb_report(&mut self, report: &NodeReport) -> Vec<OverloadAlarm> {
        let alarms = self
            .discovery
            .absorb_report(report, &mut self.decision.pib);
        self.discovery
            .view()
            .apply_report(report, &mut self.topology);
        alarms
    }

    /// Handle an explicit real-time overload alarm.
    pub fn overload_alarm(&mut self, alarm: OverloadAlarm) -> usize {
        self.discovery.handle_alarm(alarm, &mut self.decision.pib)
    }

    /// Recompute the PIB if the 10-minute period elapsed. Returns true when
    /// a recompute ran.
    pub fn maybe_recompute(&mut self, now: SimTime) -> bool {
        let period = SimDuration::from_secs(self.routing.config().period_secs);
        let due = match self.last_recompute {
            None => true,
            Some(last) => now.saturating_since(last) >= period,
        };
        if due {
            self.force_recompute(now);
        }
        due
    }

    /// Unconditionally recompute the PIB from the current topology.
    pub fn force_recompute(&mut self, now: SimTime) {
        let entries = self.routing.compute_all(&self.topology, now);
        self.ksp_paths_computed += entries.values().map(|v| v.len() as u64).sum::<u64>();
        self.decision.pib.replace_all(entries);
        self.last_recompute = Some(now);
        self.recompute_rounds += 1;
    }

    /// Stream Management: a producer registered a new upload (§4.1).
    pub fn register_stream(&mut self, stream: StreamId, producer: NodeId) {
        self.decision.sib.register(stream, producer);
    }

    /// Broadcaster mobility (§7.1): the broadcaster moved to a new
    /// producer node. The SIB re-homes the stream (new viewers route to
    /// the new producer) and the best path from the new producer to the
    /// old one is returned, so the driver can instruct the old producer to
    /// subscribe to the new one — existing overlay paths stay intact.
    pub fn rehome_producer(
        &mut self,
        stream: StreamId,
        new_producer: NodeId,
        now: SimTime,
    ) -> Result<PathAssignment> {
        let old = self
            .decision
            .sib
            .producer_of(stream)
            .ok_or_else(|| livenet_types::Error::not_found(format!("stream {stream}")))?;
        self.decision.sib.register(stream, new_producer);
        self.rehomes += 1;
        // Path from the NEW producer to the OLD one (the old producer acts
        // as a consumer of the re-homed stream).
        self.path_request(stream, old, now)
    }

    // ------------------------------------------------------------------
    // Failure handling (§6.5, §7.2): mark elements down and recompute
    // around them via the scoped topology update, so every later path
    // request — and the rehoming of streams produced on dead nodes —
    // avoids the failed element until it recovers.
    // ------------------------------------------------------------------

    /// A node was observed dead (missed reports / operator signal): mark
    /// it down and rebuild the PIB around it.
    pub fn node_failed(&mut self, node: NodeId) {
        self.nodes_failed += 1;
        self.update_topology(|t| t.set_node_up(node, false));
    }

    /// A failed node came back; paths may use it again.
    pub fn node_recovered(&mut self, node: NodeId) {
        self.nodes_recovered += 1;
        self.update_topology(|t| t.set_node_up(node, true));
    }

    /// Both directions of a link failed.
    pub fn link_failed(&mut self, a: NodeId, b: NodeId) {
        self.update_topology(|t| t.set_duplex_up(a, b, false));
    }

    /// A failed link recovered.
    pub fn link_recovered(&mut self, a: NodeId, b: NodeId) {
        self.update_topology(|t| t.set_duplex_up(a, b, true));
    }

    /// A whole region (country) went dark — the §6.5 Double-12 outage
    /// scenario. Every node there goes down in ONE recompute. Returns the
    /// affected node ids (deterministic order) so the driver can rehome
    /// or tear down the streams produced there.
    pub fn region_failed(&mut self, country: u32) -> Vec<NodeId> {
        self.update_topology(|t| {
            let victims: Vec<NodeId> = t.nodes_in_country(country).collect();
            for &n in &victims {
                t.set_node_up(n, false);
            }
            victims
        })
    }

    /// The region's nodes recovered.
    pub fn region_recovered(&mut self, country: u32) -> Vec<NodeId> {
        self.update_topology(|t| {
            let back: Vec<NodeId> = t.nodes_in_country(country).collect();
            for &n in &back {
                t.set_node_up(n, true);
            }
            back
        })
    }

    /// Streams currently produced on `node` (deterministic order) — the
    /// set that needs rehoming when the node dies.
    pub fn streams_on(&self, node: NodeId) -> Vec<StreamId> {
        let mut streams: Vec<StreamId> = self
            .decision
            .sib
            .iter()
            .filter(|&(_, p)| p == node)
            .map(|(s, _)| s)
            .collect();
        // The SIB is a HashMap; callers (fault rehoming) need a
        // deterministic order.
        streams.sort_unstable();
        streams
    }

    /// Stream Management: a stream ended.
    pub fn unregister_stream(&mut self, stream: StreamId) {
        self.decision.sib.unregister(stream);
        self.popular.remove(&stream);
    }

    /// Producer currently registered for a stream.
    pub fn producer_of(&self, stream: StreamId) -> Option<NodeId> {
        self.decision.sib.producer_of(stream)
    }

    /// Serve a path request from a consumer node (Algorithm 1 `GetPath`).
    ///
    /// Returns the unified [`PathAssignment`] shape shared with
    /// [`Self::prefetch_paths`] and [`Self::rehome_producer`].
    pub fn path_request(
        &mut self,
        stream: StreamId,
        consumer: NodeId,
        now: SimTime,
    ) -> Result<PathAssignment> {
        let lookup = self
            .decision
            .get_path(stream, consumer, &self.routing, &self.topology, now)?;
        Ok(PathAssignment::from_lookup(stream, consumer, lookup))
    }

    /// Mark a broadcaster's stream as popular (historical viewing stats or
    /// advance notice of a campaign, §4.4 footnote 7).
    pub fn mark_popular(&mut self, stream: StreamId) {
        self.popular.insert(stream);
    }

    /// True when the stream is in the popular set.
    pub fn is_popular(&self, stream: StreamId) -> bool {
        self.popular.contains(&stream)
    }

    /// Build the proactive prefetch set for a popular stream: the best path
    /// to *every* routable node, pushed before any viewer arrives (§4.4).
    ///
    /// Each entry carries its consumer inside the [`PathAssignment`] — the
    /// same shape [`Self::path_request`] serves on demand.
    pub fn prefetch_paths(&mut self, stream: StreamId, now: SimTime) -> Vec<PathAssignment> {
        if !self.popular.contains(&stream) {
            return Vec::new();
        }
        let consumers: Vec<NodeId> = self.topology.routable_node_ids().collect();
        let mut out = Vec::new();
        for consumer in consumers {
            if let Ok(lookup) =
                self.decision
                    .get_path(stream, consumer, &self.routing, &self.topology, now)
            {
                out.push(PathAssignment::from_lookup(stream, consumer, lookup));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_topology::{GeoConfig, GeoTopology, LinkReport};
    use livenet_types::SimDuration;

    fn brain(seed: u64) -> (StreamingBrain, Vec<NodeId>) {
        let g = GeoTopology::generate(&GeoConfig::tiny(seed));
        let nodes: Vec<NodeId> = g.topology.routable_node_ids().collect();
        (StreamingBrain::new(g.topology, BrainConfig::default()), nodes)
    }

    #[test]
    fn record_telemetry_exports_lifetime_counters() {
        let (mut b, nodes) = brain(6);
        let s = StreamId::new(1);
        b.register_stream(s, nodes[0]);
        b.path_request(s, nodes[1], SimTime::ZERO).unwrap();
        b.rehome_producer(s, nodes[2], SimTime::ZERO).unwrap();
        b.node_failed(nodes[3]);
        b.node_recovered(nodes[3]);
        let mut hub = livenet_telemetry::TelemetryHub::new();
        b.record_telemetry(&mut hub);
        let snap = hub.snapshot();
        assert_eq!(snap.counter("brain.recompute_rounds"), b.recompute_rounds);
        assert_eq!(snap.counter("brain.rehomes"), 1);
        assert_eq!(snap.counter("brain.node_failed"), 1);
        assert_eq!(snap.counter("brain.node_recovered"), 1);
        assert_eq!(
            snap.counter("brain.requests_served"),
            b.decision().requests_served
        );
        assert!(snap.counter("brain.ksp_paths_computed") > 0);
    }

    #[test]
    fn initial_pib_is_populated() {
        let (b, nodes) = brain(1);
        let n = nodes.len();
        assert_eq!(b.decision().pib.len(), n * (n - 1));
        assert_eq!(b.recompute_rounds, 1);
    }

    #[test]
    fn periodic_recompute_respects_period() {
        let (mut b, _) = brain(2);
        assert!(!b.maybe_recompute(SimTime::from_secs(599)));
        assert!(b.maybe_recompute(SimTime::from_secs(600)));
        assert_eq!(b.recompute_rounds, 2);
        assert!(!b.maybe_recompute(SimTime::from_secs(700)));
    }

    #[test]
    fn stream_lifecycle_and_path_request() {
        let (mut b, nodes) = brain(3);
        let s = StreamId::new(10);
        b.register_stream(s, nodes[0]);
        assert_eq!(b.producer_of(s), Some(nodes[0]));
        let r = b.path_request(s, nodes[5], SimTime::ZERO).unwrap();
        assert_eq!(r.paths[0].producer(), nodes[0]);
        b.unregister_stream(s);
        assert!(b.path_request(s, nodes[5], SimTime::ZERO).is_err());
    }

    #[test]
    fn overload_report_invalidates_then_recompute_heals() {
        let (mut b, nodes) = brain(4);
        let victim = nodes[1];
        let total_before = b.decision().pib.total_paths();
        let report = NodeReport {
            node: victim,
            at: SimTime::from_secs(60),
            utilization: 0.9,
            links: vec![],
        };
        let alarms = b.absorb_report(&report);
        assert_eq!(alarms.len(), 1);
        assert!(b.decision().pib.total_paths() < total_before);
        // The working topology now sees the node loaded; recompute avoids it.
        b.force_recompute(SimTime::from_secs(120));
        for (_, paths) in b.decision().pib.iter() {
            for p in paths {
                assert!(!p.contains_node(victim) || p.producer() == victim || p.consumer() == victim);
            }
        }
    }

    #[test]
    fn link_report_updates_working_topology() {
        let (mut b, nodes) = brain(5);
        let report = NodeReport {
            node: nodes[0],
            at: SimTime::from_secs(60),
            utilization: 0.2,
            links: vec![LinkReport {
                to: nodes[1],
                rtt: SimDuration::from_millis(123),
                loss: 0.004,
                utilization: 0.5,
                from_transport: true,
            }],
        };
        b.absorb_report(&report);
        let l = b.topology().link(nodes[0], nodes[1]).unwrap();
        assert_eq!(l.rtt, SimDuration::from_millis(123));
        assert_eq!(l.loss, 0.004);
    }

    #[test]
    fn prefetch_only_for_popular_streams() {
        let (mut b, nodes) = brain(6);
        let s = StreamId::new(77);
        b.register_stream(s, nodes[0]);
        assert!(b.prefetch_paths(s, SimTime::ZERO).is_empty());
        b.mark_popular(s);
        let prefetched = b.prefetch_paths(s, SimTime::ZERO);
        assert_eq!(prefetched.len(), nodes.len());
        // Every consumer gets a usable path (zero-hop for the producer),
        // stamped with its own consumer and the SIB producer.
        assert!(prefetched.iter().all(|a| !a.paths.is_empty()));
        assert!(prefetched.iter().all(|a| a.stream == s && a.producer == nodes[0]));
        let consumers: BTreeSet<NodeId> = prefetched.iter().map(|a| a.consumer).collect();
        assert_eq!(consumers.len(), nodes.len());
    }

    #[test]
    fn update_topology_recomputes_routing_state() {
        let (mut b, nodes) = brain(9);
        let rounds_before = b.recompute_rounds;
        let s = StreamId::new(3);
        b.register_stream(s, nodes[0]);
        // Degrade every link out of an intermediate node so recomputed
        // paths route around it.
        let victim = nodes[1];
        let rtt = b.update_topology(|t| {
            let peers: Vec<NodeId> = t.routable_node_ids().collect();
            for p in peers {
                if p != victim {
                    if let Some(l) = t.link_mut(victim, p) {
                        l.utilization = 0.95;
                    }
                }
            }
            t.link(victim, nodes[0]).map(|l| l.rtt)
        });
        assert!(rtt.is_some());
        // The closure ran exactly once and the PIB was rebuilt on exit.
        assert_eq!(b.recompute_rounds, rounds_before + 1);
        for (_, paths) in b.decision().pib.iter() {
            for p in paths {
                assert!(
                    !p.contains_node(victim) || p.producer() == victim || p.consumer() == victim
                );
            }
        }
        // The periodic schedule is unaffected: the rebuild reused the last
        // recompute timestamp, so the next due time is unchanged.
        assert!(!b.maybe_recompute(SimTime::from_secs(599)));
        assert!(b.maybe_recompute(SimTime::from_secs(600)));
    }

    #[test]
    fn rehome_producer_updates_sib_and_returns_bridge_path() {
        let (mut b, nodes) = brain(8);
        let s = StreamId::new(5);
        b.register_stream(s, nodes[0]);
        let lookup = b.rehome_producer(s, nodes[3], SimTime::ZERO).unwrap();
        // SIB re-homed: new viewers resolve to the new producer.
        assert_eq!(b.producer_of(s), Some(nodes[3]));
        // The bridge path runs from the NEW producer to the OLD one.
        assert_eq!(lookup.paths[0].producer(), nodes[3]);
        assert_eq!(lookup.paths[0].consumer(), nodes[0]);
        // Unknown stream errors.
        assert!(b.rehome_producer(StreamId::new(99), nodes[1], SimTime::ZERO).is_err());
    }

    #[test]
    fn node_failure_reroutes_and_recovery_restores() {
        let (mut b, nodes) = brain(10);
        let victim = nodes[1];
        let rounds = b.recompute_rounds;
        b.node_failed(victim);
        assert_eq!(b.recompute_rounds, rounds + 1);
        // No PIB path touches the dead node at all (it is not merely
        // deprioritized — it is out of the routable set).
        for (_, paths) in b.decision().pib.iter() {
            for p in paths {
                assert!(!p.contains_node(victim), "path {p:?} crosses dead node");
            }
        }
        // A path request between live nodes still succeeds.
        let s = StreamId::new(4);
        b.register_stream(s, nodes[0]);
        let r = b.path_request(s, nodes[4], SimTime::ZERO).unwrap();
        assert!(r.paths.iter().all(|p| !p.contains_node(victim)));
        // Recovery restores the full mesh.
        b.node_recovered(victim);
        let n = b.topology().routable_node_ids().count();
        assert_eq!(b.decision().pib.len(), n * (n - 1));
    }

    #[test]
    fn link_failure_routes_around_and_back() {
        let (mut b, nodes) = brain(11);
        let s = StreamId::new(6);
        b.register_stream(s, nodes[0]);
        let direct = b.topology().link(nodes[0], nodes[2]).is_some();
        b.link_failed(nodes[0], nodes[2]);
        assert!(!b.topology().link_is_up(nodes[0], nodes[2]));
        // Paths between the endpoints never use the dead link directly.
        if direct {
            let r = b.path_request(s, nodes[2], SimTime::ZERO).unwrap();
            for p in &r.paths {
                for w in p.nodes.windows(2) {
                    assert!(
                        !(w[0] == nodes[0] && w[1] == nodes[2]),
                        "path uses the failed link"
                    );
                }
            }
        }
        b.link_recovered(nodes[0], nodes[2]);
        assert_eq!(b.topology().link_is_up(nodes[0], nodes[2]), direct);
    }

    #[test]
    fn region_failure_downs_every_node_in_country() {
        let (mut b, _) = brain(12);
        let country = b.topology().nodes().next().unwrap().country;
        let victims = b.region_failed(country);
        assert!(!victims.is_empty());
        for &v in &victims {
            assert!(!b.topology().node_is_up(v));
        }
        for (_, paths) in b.decision().pib.iter() {
            for p in paths {
                for &v in &victims {
                    assert!(!p.contains_node(v));
                }
            }
        }
        let back = b.region_recovered(country);
        assert_eq!(victims, back);
        for &v in &back {
            assert!(b.topology().node_is_up(v));
        }
    }

    #[test]
    fn streams_on_lists_dead_nodes_streams_for_rehoming() {
        let (mut b, nodes) = brain(13);
        let s1 = StreamId::new(1);
        let s2 = StreamId::new(2);
        let s3 = StreamId::new(3);
        b.register_stream(s1, nodes[0]);
        b.register_stream(s2, nodes[1]);
        b.register_stream(s3, nodes[0]);
        assert_eq!(b.streams_on(nodes[0]), vec![s1, s3]);
        assert_eq!(b.streams_on(nodes[1]), vec![s2]);
        // Failure + rehoming flow: the dead producer's streams move.
        b.node_failed(nodes[0]);
        for s in b.streams_on(nodes[0]) {
            // SIB rehoming happens before the bridge-path lookup, which may
            // legitimately fail while the old producer is still down.
            let _ = b.rehome_producer(s, nodes[2], SimTime::ZERO);
        }
        assert_eq!(b.producer_of(s1), Some(nodes[2]));
        assert_eq!(b.producer_of(s3), Some(nodes[2]));
        assert!(b.streams_on(nodes[0]).is_empty());
    }

    #[test]
    fn unregister_clears_popular_flag() {
        let (mut b, nodes) = brain(7);
        let s = StreamId::new(8);
        b.register_stream(s, nodes[0]);
        b.mark_popular(s);
        b.unregister_stream(s);
        assert!(!b.is_popular(s));
    }
}
