//! Global Routing (paper §4.3): the two-step heuristic.
//!
//! Step 1: abstract link weights (Eq. 2–3) and find the K = 3 shortest
//! paths between every pair of routable nodes with Yen's KSP.
//!
//! Step 2: filter out paths that violate the constraints — longer than
//! 3 hops, or containing overloaded (≥ 80%) links or nodes.
//!
//! When every computed path for a pair is filtered out, the Path Decision
//! module falls back to last-resort paths (producer → last-resort relay →
//! consumer), built here as well.

use crate::ksp::{yen_ksp, WeightedGraph};
use crate::pib::OverlayPath;
use crate::weight::{link_weight, WeightParams};
use livenet_types::{NodeId, SimTime};
use livenet_topology::{Topology, OVERLOAD_TARGET};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Global Routing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Number of candidate paths per pair (paper: K = 3).
    pub k: usize,
    /// Maximum overlay hops per path (paper: 3).
    pub max_hops: usize,
    /// Overload threshold for nodes and links (paper: 0.80).
    pub overload_target: f64,
    /// Weight-function hyper-parameters.
    pub weight: WeightParams,
    /// Recompute period (paper: 10 minutes). Stored for drivers.
    pub period_secs: u64,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            k: 3,
            max_hops: 3,
            overload_target: OVERLOAD_TARGET,
            weight: WeightParams::default(),
            period_secs: 600,
        }
    }
}

/// The Global Routing module.
#[derive(Debug, Clone)]
pub struct GlobalRouting {
    config: RoutingConfig,
}

impl GlobalRouting {
    /// New module with the given config.
    pub fn new(config: RoutingConfig) -> Self {
        GlobalRouting { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Build the abstracted weighted graph from the current topology view.
    ///
    /// `u_AB` is the max of link utilization and both endpoint loads
    /// (paper Eq. 2 text); last-resort nodes are excluded — they are
    /// reserved for last-resort paths only.
    pub fn build_graph(&self, topology: &Topology) -> WeightedGraph {
        let ids: Vec<NodeId> = topology.routable_node_ids().collect();
        let mut edges = Vec::new();
        for (from, to, m) in topology.links() {
            let (Some(nf), Some(nt)) = (topology.node(from), topology.node(to)) else {
                continue;
            };
            if nf.last_resort || nt.last_resort {
                continue;
            }
            // Failed links and links touching failed nodes are invisible to
            // routing; their metrics survive for when they come back up.
            if !topology.link_is_up(from, to) {
                continue;
            }
            let u = m.utilization.max(nf.utilization).max(nt.utilization);
            let w = link_weight(m.rtt, m.loss, u, self.config.weight);
            edges.push((from, to, w));
        }
        WeightedGraph::new(ids, edges)
    }

    /// Step 1 + step 2 for one pair: K shortest paths, then constraint
    /// filtering. `now` stamps the resulting paths.
    pub fn compute_pair(
        &self,
        topology: &Topology,
        graph: &WeightedGraph,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
    ) -> Vec<OverlayPath> {
        let (Some(&si), Some(&di)) = (graph.index.get(&src), graph.index.get(&dst)) else {
            return Vec::new();
        };
        let raw = yen_ksp(graph, si, di, self.config.k, self.config.max_hops);
        raw.into_iter()
            .map(|(weight, idx_path)| OverlayPath {
                nodes: idx_path.into_iter().map(|i| graph.ids[i]).collect(),
                weight,
                computed_at: now,
                last_resort: false,
            })
            .filter(|p| self.satisfies_constraints(topology, p))
            .collect()
    }

    /// Step 2's predicate: hop bound and overload checks.
    pub fn satisfies_constraints(&self, topology: &Topology, path: &OverlayPath) -> bool {
        if path.hops() > self.config.max_hops {
            return false;
        }
        for &n in &path.nodes {
            if let Some(info) = topology.node(n) {
                if info.utilization >= self.config.overload_target {
                    return false;
                }
            }
        }
        for w in path.nodes.windows(2) {
            if !topology.link_is_up(w[0], w[1]) {
                return false; // link (or an endpoint) is down
            }
            if let Some(l) = topology.link(w[0], w[1]) {
                if l.utilization >= self.config.overload_target {
                    return false;
                }
            } else {
                return false; // link disappeared from the view
            }
        }
        true
    }

    /// Full recomputation over all routable pairs (the 10-minute job).
    /// Returns the new PIB contents.
    ///
    /// Uses the direct-enumeration fast path when the hop limit is ≤ 3
    /// (LiveNet's production constraint); falls back to Yen's KSP per pair
    /// for larger hop limits.
    pub fn compute_all(
        &self,
        topology: &Topology,
        now: SimTime,
    ) -> HashMap<(NodeId, NodeId), Vec<OverlayPath>> {
        if self.config.max_hops <= 3 {
            return self.compute_all_mesh(topology, now);
        }
        let graph = self.build_graph(topology);
        let mut out = HashMap::new();
        let ids = graph.ids.clone();
        for &src in &ids {
            for &dst in &ids {
                if src == dst {
                    continue;
                }
                let paths = self.compute_pair(topology, &graph, src, dst, now);
                out.insert((src, dst), paths);
            }
        }
        out
    }

    /// All-pairs K-shortest-paths specialized for hop limit ≤ 3 over a
    /// dense overlay: enumerate direct, 2-hop and 3-hop paths directly.
    ///
    /// For n nodes this is O(n³) — milliseconds for a CDN-sized overlay —
    /// versus Yen's per-pair Dijkstras, and produces exactly the same
    /// answer (asserted by tests).
    pub fn compute_all_mesh(
        &self,
        topology: &Topology,
        now: SimTime,
    ) -> HashMap<(NodeId, NodeId), Vec<OverlayPath>> {
        let graph = self.build_graph(topology);
        let n = graph.ids.len();
        // Dense weight matrix (infinity = no link).
        let mut w = vec![f64::INFINITY; n * n];
        for (u, adj) in graph.adj.iter().enumerate() {
            for &(v, weight) in adj {
                w[u * n + v] = weight;
            }
        }
        let k = self.config.k;
        let max_hops = self.config.max_hops;
        // For 3-hop paths s→r1→r2→d we need, per (s, r2), the two best r1
        // choices (second-best covers the r1 == d exclusion).
        let mut best2: Vec<[(f64, usize); 2]> =
            vec![[(f64::INFINITY, usize::MAX); 2]; n * n];
        if max_hops >= 3 {
            for s in 0..n {
                for r2 in 0..n {
                    if r2 == s {
                        continue;
                    }
                    let mut top = [(f64::INFINITY, usize::MAX); 2];
                    for r1 in 0..n {
                        if r1 == s || r1 == r2 {
                            continue;
                        }
                        let c = w[s * n + r1] + w[r1 * n + r2];
                        if c < top[0].0 {
                            top[1] = top[0];
                            top[0] = (c, r1);
                        } else if c < top[1].0 {
                            top[1] = (c, r1);
                        }
                    }
                    best2[s * n + r2] = top;
                }
            }
        }

        let mut out = HashMap::new();
        // Candidates are fixed-size (weight, node-index buffer, length) so
        // the inner loops allocate nothing: ~2n³ Vec allocations per
        // recompute used to dominate the Brain's 10-minute job.
        type Cand = (f64, [usize; 4], u8);
        let cmp = |a: &Cand, b: &Cand| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1[..a.2 as usize].cmp(&b.1[..b.2 as usize]))
        };
        let mut candidates: Vec<Cand> = Vec::with_capacity(2 * n);
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                candidates.clear();
                let direct = w[s * n + d];
                if direct.is_finite() {
                    candidates.push((direct, [s, d, 0, 0], 2));
                }
                if max_hops >= 2 {
                    for r in 0..n {
                        if r == s || r == d {
                            continue;
                        }
                        let c = w[s * n + r] + w[r * n + d];
                        if c.is_finite() {
                            candidates.push((c, [s, r, d, 0], 3));
                        }
                    }
                }
                if max_hops >= 3 {
                    for r2 in 0..n {
                        if r2 == s || r2 == d {
                            continue;
                        }
                        let tail = w[r2 * n + d];
                        if !tail.is_finite() {
                            continue;
                        }
                        // Pick the best r1 that is not d.
                        let [(c0, r1a), (c1, r1b)] = best2[s * n + r2];
                        let (c, r1) = if r1a != d { (c0, r1a) } else { (c1, r1b) };
                        if r1 == usize::MAX || !c.is_finite() {
                            continue;
                        }
                        candidates.push((c + tail, [s, r1, r2, d], 4));
                    }
                }
                // Top-k selection under the same total order as the old
                // sort-everything-then-take(k): partition, then sort only
                // the k survivors.
                if candidates.len() > k {
                    candidates.select_nth_unstable_by(k, cmp);
                    candidates.truncate(k);
                }
                candidates.sort_by(cmp);
                let paths: Vec<OverlayPath> = candidates
                    .iter()
                    .map(|&(weight, idx_path, len)| OverlayPath {
                        nodes: idx_path[..len as usize]
                            .iter()
                            .map(|&i| graph.ids[i])
                            .collect(),
                        weight,
                        computed_at: now,
                        last_resort: false,
                    })
                    .filter(|p| self.satisfies_constraints(topology, p))
                    .collect();
                out.insert((graph.ids[s], graph.ids[d]), paths);
            }
        }
        out
    }

    /// Build last-resort paths for a pair: producer → LR relay → consumer,
    /// best (lowest RTT sum) first (§4.3 "Last-Resort Paths").
    pub fn last_resort_paths(
        &self,
        topology: &Topology,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
    ) -> Vec<OverlayPath> {
        let mut out: Vec<OverlayPath> = topology
            .last_resort_ids()
            .filter_map(|lr| {
                if !topology.link_is_up(src, lr) || !topology.link_is_up(lr, dst) {
                    return None;
                }
                let up = topology.link(src, lr)?;
                let down = topology.link(lr, dst)?;
                Some(OverlayPath {
                    nodes: vec![src, lr, dst],
                    weight: link_weight(up.rtt, up.loss, 0.0, self.config.weight)
                        + link_weight(down.rtt, down.loss, 0.0, self.config.weight),
                    computed_at: now,
                    last_resort: true,
                })
            })
            .collect();
        out.sort_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_topology::{GeoConfig, GeoTopology};

    fn topo(seed: u64) -> Topology {
        GeoTopology::generate(&GeoConfig::tiny(seed)).topology
    }

    #[test]
    fn compute_all_covers_all_routable_pairs() {
        let t = topo(1);
        let gr = GlobalRouting::new(RoutingConfig::default());
        let pib = gr.compute_all(&t, SimTime::ZERO);
        let n = t.routable_node_ids().count();
        assert_eq!(pib.len(), n * (n - 1));
        // Every pair in a healthy full mesh has at least one path.
        assert!(pib.values().all(|v| !v.is_empty()));
    }

    #[test]
    fn paths_respect_hop_limit() {
        let t = topo(2);
        let gr = GlobalRouting::new(RoutingConfig::default());
        for paths in gr.compute_all(&t, SimTime::ZERO).values() {
            for p in paths {
                assert!(p.hops() <= 3);
                assert!(p.hops() >= 1);
            }
        }
    }

    #[test]
    fn paths_sorted_by_weight_and_start_end_correct() {
        let t = topo(3);
        let gr = GlobalRouting::new(RoutingConfig::default());
        for ((src, dst), paths) in gr.compute_all(&t, SimTime::ZERO) {
            for w in paths.windows(2) {
                assert!(w[0].weight <= w[1].weight);
            }
            for p in &paths {
                assert_eq!(p.producer(), src);
                assert_eq!(p.consumer(), dst);
            }
        }
    }

    #[test]
    fn overloaded_node_is_avoided() {
        let mut t = topo(4);
        let gr = GlobalRouting::new(RoutingConfig::default());
        // Overload one node; recompute; no path may traverse it (except as
        // endpoint... the paper invalidates those too, so endpoints count).
        let victim = t.routable_node_ids().nth(2).unwrap();
        t.node_mut(victim).unwrap().utilization = 0.95;
        let pib = gr.compute_all(&t, SimTime::ZERO);
        for ((src, dst), paths) in &pib {
            if *src == victim || *dst == victim {
                // Paths from/to an overloaded node are filtered entirely.
                assert!(paths.is_empty(), "pair ({src},{dst}) kept {paths:?}");
            } else {
                for p in paths {
                    assert!(!p.contains_node(victim));
                }
            }
        }
    }

    #[test]
    fn overloaded_link_is_avoided() {
        let mut t = topo(5);
        let ids: Vec<NodeId> = t.routable_node_ids().collect();
        let (a, b) = (ids[0], ids[1]);
        t.link_mut(a, b).unwrap().utilization = 0.9;
        let gr = GlobalRouting::new(RoutingConfig::default());
        let pib = gr.compute_all(&t, SimTime::ZERO);
        for paths in pib.values() {
            for p in paths {
                assert!(!p.contains_link(a, b));
            }
        }
        // The reverse direction is unaffected: paths still exist, and none
        // of them needs to dodge the (directed) overloaded link a→b.
        assert!(!pib[&(b, a)].is_empty());
        for p in &pib[&(b, a)] {
            assert!(!p.contains_link(a, b));
        }
    }

    #[test]
    fn loaded_links_get_heavier_and_lose_preference() {
        let mut t = topo(6);
        let gr = GlobalRouting::new(RoutingConfig::default());
        let ids: Vec<NodeId> = t.routable_node_ids().collect();
        let (a, b) = (ids[0], ids[1]);
        let before = gr.compute_all(&t, SimTime::ZERO);
        let best_before = before[&(a, b)][0].clone();
        // Load every link on the previously-best path to just under target.
        for w in best_before.nodes.windows(2) {
            t.link_mut(w[0], w[1]).unwrap().utilization = 0.79;
        }
        let after = gr.compute_all(&t, SimTime::ZERO);
        let best_after = &after[&(a, b)][0];
        // Weight of the same path must have grown; best path may change.
        assert!(best_after.weight <= best_before.weight * 1.6);
        let same_path_after = after[&(a, b)]
            .iter()
            .find(|p| p.nodes == best_before.nodes);
        if let Some(p) = same_path_after {
            assert!(p.weight > best_before.weight);
        }
    }

    #[test]
    fn mesh_fast_path_matches_yen_best_paths() {
        for seed in 1..6 {
            let t = topo(seed);
            let gr = GlobalRouting::new(RoutingConfig::default());
            let graph = gr.build_graph(&t);
            let mesh = gr.compute_all_mesh(&t, SimTime::ZERO);
            let ids: Vec<NodeId> = t.routable_node_ids().collect();
            for &src in &ids {
                for &dst in &ids {
                    if src == dst {
                        continue;
                    }
                    let yen = gr.compute_pair(&t, &graph, src, dst, SimTime::ZERO);
                    let fast = &mesh[&(src, dst)];
                    assert_eq!(
                        yen.first().map(|p| &p.nodes),
                        fast.first().map(|p| &p.nodes),
                        "seed {seed} pair ({src},{dst}): best path differs"
                    );
                    if let (Some(a), Some(b)) = (yen.first(), fast.first()) {
                        assert!((a.weight - b.weight).abs() < 1e-9);
                    }
                    // All fast paths are valid, sorted and within bounds.
                    for w in fast.windows(2) {
                        assert!(w[0].weight <= w[1].weight);
                    }
                    for p in fast {
                        assert!(p.hops() <= 3);
                        assert_eq!(p.producer(), src);
                        assert_eq!(p.consumer(), dst);
                    }
                }
            }
        }
    }

    #[test]
    fn last_resort_paths_are_two_hops_via_reserved_nodes() {
        let t = topo(7);
        let gr = GlobalRouting::new(RoutingConfig::default());
        let ids: Vec<NodeId> = t.routable_node_ids().collect();
        let lrs: Vec<NodeId> = t.last_resort_ids().collect();
        let paths = gr.last_resort_paths(&t, ids[0], ids[3], SimTime::ZERO);
        assert_eq!(paths.len(), lrs.len());
        for p in &paths {
            assert_eq!(p.hops(), 2);
            assert!(p.last_resort);
            assert!(lrs.contains(&p.nodes[1]));
        }
    }

    #[test]
    fn normal_routing_never_uses_last_resort_nodes() {
        let t = topo(8);
        let gr = GlobalRouting::new(RoutingConfig::default());
        let lrs: Vec<NodeId> = t.last_resort_ids().collect();
        for paths in gr.compute_all(&t, SimTime::ZERO).values() {
            for p in paths {
                for lr in &lrs {
                    assert!(!p.contains_node(*lr));
                }
            }
        }
    }
}
