//! Path Decision (paper §4.4, Algorithm 1's `GetPath`).
//!
//! Consumer nodes call [`PathDecision::get_path`] with a stream ID. The
//! stream ID is hashed into the SIB to find the producer; (producer,
//! consumer) keys the PIB for the candidate path list; invalid paths
//! (overloaded / stale) are filtered; when nothing survives, last-resort
//! paths are returned.

use crate::pib::{OverlayPath, Pib, Sib};
use crate::routing::GlobalRouting;
use livenet_topology::Topology;
use livenet_types::{Error, NodeId, Result, SimTime, StreamId};

/// Result of a path lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct PathLookup {
    /// Candidate paths, best first (the paper returns 3).
    pub paths: Vec<OverlayPath>,
    /// True when the lookup fell back to last-resort paths.
    pub last_resort: bool,
}

/// A fully-resolved path assignment for one (stream, consumer) pair — the
/// single answer shape every Brain entry point returns.
///
/// [`StreamingBrain::path_request`], `prefetch_paths` and
/// `rehome_producer` all used to hand back slightly different shapes
/// (bare [`PathLookup`]s, `(NodeId, PathLookup)` tuples); fleet shard
/// workers and the tokio transport now consume this one type.
///
/// [`StreamingBrain::path_request`]: crate::StreamingBrain::path_request
#[derive(Debug, Clone, PartialEq)]
pub struct PathAssignment {
    /// The stream the paths carry.
    pub stream: StreamId,
    /// The consumer node the paths terminate at.
    pub consumer: NodeId,
    /// The producer node the paths originate from (SIB resolution).
    pub producer: NodeId,
    /// Candidate paths, best first (the paper returns 3). Never empty:
    /// lookups that find nothing error instead.
    pub paths: Vec<OverlayPath>,
    /// True when the lookup fell back to last-resort paths.
    pub last_resort: bool,
}

impl PathAssignment {
    /// Wrap a decision-layer lookup into the unified shape.
    pub fn from_lookup(stream: StreamId, consumer: NodeId, lookup: PathLookup) -> Self {
        let producer = lookup
            .paths
            .first()
            .map(|p| p.producer())
            .unwrap_or(consumer);
        PathAssignment {
            stream,
            consumer,
            producer,
            paths: lookup.paths,
            last_resort: lookup.last_resort,
        }
    }

    /// The best candidate path.
    ///
    /// # Panics
    /// If `paths` is empty — the Brain never produces such an assignment.
    pub fn best(&self) -> &OverlayPath {
        &self.paths[0]
    }

    /// Overlay hops of the best candidate.
    pub fn hops(&self) -> usize {
        self.best().hops()
    }

    /// The nodes that can serve retransmissions to the consumer: the
    /// penultimate hop of each candidate path (the neighbor that would
    /// feed the consumer on that path), deduplicated, best path first.
    /// The consumer installs every candidate via `install_paths`, so each
    /// entry here is an alternate upstream its multi-supplier RTX path
    /// may re-NACK when the primary's packet cache misses.
    pub fn rtx_suppliers(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for p in &self.paths {
            let n = &p.nodes;
            if n.len() < 2 || n.last() != Some(&self.consumer) {
                continue;
            }
            let hop = n[n.len() - 2];
            if hop != self.consumer && !out.contains(&hop) {
                out.push(hop);
            }
        }
        out
    }
}

/// The Path Decision module: owns the PIB and SIB.
#[derive(Debug, Default)]
pub struct PathDecision {
    /// The Path Information Base.
    pub pib: Pib,
    /// The Stream Information Base.
    pub sib: Sib,
    /// Path requests served (telemetry; drives Fig. 10a).
    pub requests_served: u64,
    /// Requests that fell back to last-resort paths (paper: ~2%).
    pub last_resort_served: u64,
}

impl PathDecision {
    /// Empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Algorithm 1 `GetPath(sid, DstNd)`: resolve the producer via the SIB,
    /// fetch candidates from the PIB, drop invalid ones, and fall back to
    /// last-resort paths when the list empties.
    ///
    /// `routing` and `topology` supply the constraint predicate and the
    /// last-resort construction.
    pub fn get_path(
        &mut self,
        stream: StreamId,
        consumer: NodeId,
        routing: &GlobalRouting,
        topology: &Topology,
        now: SimTime,
    ) -> Result<PathLookup> {
        self.requests_served += 1;
        let producer = self
            .sib
            .producer_of(stream)
            .ok_or_else(|| Error::not_found(format!("stream {stream} not in SIB")))?;

        if producer == consumer {
            // Zero-hop path: the consumer already hosts the stream ingest.
            return Ok(PathLookup {
                paths: vec![OverlayPath {
                    nodes: vec![producer],
                    weight: 0.0,
                    computed_at: now,
                    last_resort: false,
                }],
                last_resort: false,
            });
        }

        let candidates: Vec<OverlayPath> = self
            .pib
            .lookup(producer, consumer)
            .unwrap_or(&[])
            .iter()
            .filter(|p| routing.satisfies_constraints(topology, p))
            .take(routing.config().k)
            .cloned()
            .collect();

        if !candidates.is_empty() {
            return Ok(PathLookup {
                paths: candidates,
                last_resort: false,
            });
        }

        // Last resort (§4.3): producer → reserved relay → consumer.
        let lr = routing.last_resort_paths(topology, producer, consumer, now);
        if lr.is_empty() {
            return Err(Error::exhausted(format!(
                "no path from {producer} to {consumer}"
            )));
        }
        self.last_resort_served += 1;
        Ok(PathLookup {
            paths: lr.into_iter().take(routing.config().k).collect(),
            last_resort: true,
        })
    }

    /// Fraction of served requests that used last-resort paths.
    pub fn last_resort_fraction(&self) -> f64 {
        if self.requests_served == 0 {
            0.0
        } else {
            self.last_resort_served as f64 / self.requests_served as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingConfig;
    use livenet_topology::{GeoConfig, GeoTopology};

    struct Fixture {
        topology: Topology,
        routing: GlobalRouting,
        decision: PathDecision,
        nodes: Vec<NodeId>,
    }

    fn fixture(seed: u64) -> Fixture {
        let g = GeoTopology::generate(&GeoConfig::tiny(seed));
        let topology = g.topology;
        let routing = GlobalRouting::new(RoutingConfig::default());
        let mut decision = PathDecision::new();
        decision
            .pib
            .replace_all(routing.compute_all(&topology, SimTime::ZERO));
        let nodes: Vec<NodeId> = topology.routable_node_ids().collect();
        Fixture {
            topology,
            routing,
            decision,
            nodes,
        }
    }

    #[test]
    fn lookup_returns_up_to_k_paths_best_first() {
        let mut f = fixture(1);
        let s = StreamId::new(5);
        f.decision.sib.register(s, f.nodes[0]);
        let r = f
            .decision
            .get_path(s, f.nodes[4], &f.routing, &f.topology, SimTime::ZERO)
            .unwrap();
        assert!(!r.last_resort);
        assert!(!r.paths.is_empty() && r.paths.len() <= 3);
        for w in r.paths.windows(2) {
            assert!(w[0].weight <= w[1].weight);
        }
        assert_eq!(r.paths[0].producer(), f.nodes[0]);
        assert_eq!(r.paths[0].consumer(), f.nodes[4]);
    }

    #[test]
    fn unknown_stream_errors() {
        let mut f = fixture(2);
        let err = f
            .decision
            .get_path(
                StreamId::new(99),
                f.nodes[0],
                &f.routing,
                &f.topology,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
    }

    #[test]
    fn producer_equals_consumer_gives_zero_hop() {
        let mut f = fixture(3);
        let s = StreamId::new(5);
        f.decision.sib.register(s, f.nodes[2]);
        let r = f
            .decision
            .get_path(s, f.nodes[2], &f.routing, &f.topology, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.paths.len(), 1);
        assert_eq!(r.paths[0].hops(), 0);
    }

    #[test]
    fn falls_back_to_last_resort_when_candidates_invalidated() {
        let mut f = fixture(4);
        let s = StreamId::new(5);
        let (src, dst) = (f.nodes[0], f.nodes[3]);
        f.decision.sib.register(s, src);
        // Invalidate by overloading the producer's links in the *topology*
        // (constraint check kills every normal path from src).
        let targets: Vec<NodeId> = f.topology.routable_node_ids().collect();
        for t in targets {
            if t != src {
                if let Some(l) = f.topology.link_mut(src, t) {
                    l.utilization = 0.95;
                }
            }
        }
        // Last-resort links from src stay healthy (they're to LR nodes —
        // also overloaded above? LR nodes are not routable; set them back).
        let lrs: Vec<NodeId> = f.topology.last_resort_ids().collect();
        for lr in &lrs {
            if let Some(l) = f.topology.link_mut(src, *lr) {
                l.utilization = 0.0;
            }
        }
        let r = f
            .decision
            .get_path(s, dst, &f.routing, &f.topology, SimTime::ZERO)
            .unwrap();
        assert!(r.last_resort);
        assert_eq!(r.paths[0].hops(), 2);
        assert!(lrs.contains(&r.paths[0].nodes[1]));
        assert!(f.decision.last_resort_fraction() > 0.0);
    }

    #[test]
    fn rtx_suppliers_are_unique_penultimate_hops_best_first() {
        let mut f = fixture(6);
        let s = StreamId::new(5);
        f.decision.sib.register(s, f.nodes[0]);
        let consumer = f.nodes[4];
        let lookup = f
            .decision
            .get_path(s, consumer, &f.routing, &f.topology, SimTime::ZERO)
            .unwrap();
        let assign = PathAssignment::from_lookup(s, consumer, lookup);
        let sups = assign.rtx_suppliers();
        assert!(!sups.is_empty());
        // Best path's feeder leads the list.
        let best = assign.best();
        assert_eq!(sups[0], best.nodes[best.nodes.len() - 2]);
        // Unique, never the consumer itself.
        let mut dedup = sups.clone();
        dedup.dedup();
        assert_eq!(dedup, sups);
        assert!(!sups.contains(&consumer));
    }

    #[test]
    fn request_counters_track() {
        let mut f = fixture(5);
        let s = StreamId::new(1);
        f.decision.sib.register(s, f.nodes[0]);
        for i in 1..4 {
            let dst = f.nodes[i];
            f.decision
                .get_path(s, dst, &f.routing, &f.topology, SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(f.decision.requests_served, 3);
        assert_eq!(f.decision.last_resort_served, 0);
    }
}
