//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! types but never serializes through a format crate (there is no
//! `serde_json` in the tree), so empty derive expansions are sufficient:
//! the derives exist so the annotations compile, nothing consumes the
//! trait impls.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
