//! Offline stand-in for the `bytes` crate.
//!
//! The growth container has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `bytes`: cheaply-clonable immutable
//! [`Bytes`] (an `Arc<[u8]>` window), a growable [`BytesMut`], and the
//! big-endian [`Buf`]/[`BufMut`] accessors the wire codecs use. Semantics
//! match the real crate for the subset; anything outside it is absent, not
//! emulated.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Wrap a static slice (no allocation in the real crate; here it copies
    /// once, which is equivalent for every observable purpose).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        Bytes::from_vec(m.buf)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}
impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}
impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}
impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}
impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-side cursor over a byte buffer (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write-side cursor (big-endian accessors).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_windows() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x04050607);
        m.put_u64(0x08090a0b0c0d0e0f);
        let mut b = m.freeze();
        assert_eq!(b.len(), 15);
        let sliced = b.slice(1..3);
        assert_eq!(&sliced[..], &[2, 3]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16(), 0x0203);
        assert_eq!(b.get_u32(), 0x04050607);
        assert_eq!(b.get_u64(), 0x08090a0b0c0d0e0f);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }
}
