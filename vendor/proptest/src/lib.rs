//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (typed args and `pat in strategy`
//! args), `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `any::<T>()`, range and tuple strategies, `prop::collection::vec`, and
//! `Strategy::prop_map`. Cases are sampled from a deterministic per-test
//! RNG (seeded from the test name), so failures reproduce across runs.
//! There is **no shrinking**: a failing case is reported as sampled.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind every property test (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name: FNV-1a over the bytes, SplitMix64 expansion.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer below `width` (widening multiply).
    pub fn below(&mut self, width: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(_reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Maximum `Reject`s tolerated before the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf, which
        // is what these tests want from "any float".
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! range_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width) as $t
            }
        }
    )*};
}
range_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_sint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(width) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(rng.below(width.wrapping_add(1)) as i64) as $t
            }
        }
    )*};
}
range_sint_strategy!(i8, i16, i32, i64, isize);

macro_rules! range_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
range_float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Strategy combinator modules (`prop::collection::vec` etc).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = Strategy::sample(&self.size, rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S>
        where
            S::Value: Debug,
        {
            VecStrategy { element, size }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy for `Option<S::Value>`.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                // `Some` three times out of four, like the real crate's
                // default weighting.
                if !rng.next_u64().is_multiple_of(4) {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }

        /// `None` a quarter of the time, `Some` of `inner` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S>
        where
            S::Value: Debug,
        {
            OptionStrategy { inner }
        }
    }
}

/// String-pattern strategy: a `&str` literal acts as a generator for
/// strings matching a small regex subset — literal characters, character
/// classes `[a-z0-9_]` (ranges and singletons), and quantifiers `{n}`,
/// `{m,n}`, `?`, `+`, `*` (unbounded repeats capped at 8).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .expect("unclosed character class in pattern strategy");
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .expect("unclosed quantifier in pattern strategy");
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("bad quantifier"),
                        n.parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else {
                (1, 1)
            };
            let count = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..count {
                let pick = (rng.next_u64() as usize) % alphabet.len();
                out.push(alphabet[pick]);
            }
        }
        out
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property test; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {}) at {}:{}",
                left,
                right,
                stringify!($left),
                stringify!($right),
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests.
///
/// Supports the classic proptest surface: an optional
/// `#![proptest_config(expr)]` header and test functions whose arguments
/// are either `name: Type` (expands to `any::<Type>()`) or
/// `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    // ---- internal: iterate over test fns ----
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::proptest!(@args ($cfg, $name) [] ($($args)*) $body);
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };

    // ---- internal: parse the argument list into (pattern, strategy) pairs ----
    // Typed argument: `name: Type`
    (@args $ctx:tt [$($done:tt)*] ( $arg:ident : $ty:ty , $($rest:tt)* ) $body:block) => {
        $crate::proptest!(@args $ctx [$($done)* {($arg) ($crate::any::<$ty>())}] ($($rest)*) $body)
    };
    (@args $ctx:tt [$($done:tt)*] ( $arg:ident : $ty:ty ) $body:block) => {
        $crate::proptest!(@args $ctx [$($done)* {($arg) ($crate::any::<$ty>())}] () $body)
    };
    // Strategy argument with a `mut` binding: `mut name in strategy`
    (@args $ctx:tt [$($done:tt)*] ( mut $arg:ident in $($rest:tt)* ) $body:block) => {
        $crate::proptest!(@expr $ctx [$($done)*] (mut $arg) [] ($($rest)*) $body)
    };
    // Strategy argument: `name in strategy`
    (@args $ctx:tt [$($done:tt)*] ( $arg:ident in $($rest:tt)* ) $body:block) => {
        $crate::proptest!(@expr $ctx [$($done)*] ($arg) [] ($($rest)*) $body)
    };
    // Strategy argument with a tuple/struct pattern: `(a, b) in strategy`
    (@args $ctx:tt [$($done:tt)*] ( ($($pat:tt)*) in $($rest:tt)* ) $body:block) => {
        $crate::proptest!(@expr $ctx [$($done)*] (($($pat)*)) [] ($($rest)*) $body)
    };
    // ---- internal: accumulate one strategy expression up to a top-level comma ----
    (@expr $ctx:tt [$($done:tt)*] ($($pat:tt)*) [$($acc:tt)*] ( , $($rest:tt)* ) $body:block) => {
        $crate::proptest!(@args $ctx [$($done)* {($($pat)*) ($($acc)*)}] ($($rest)*) $body)
    };
    (@expr $ctx:tt [$($done:tt)*] ($($pat:tt)*) [$($acc:tt)*] () $body:block) => {
        $crate::proptest!(@args $ctx [$($done)* {($($pat)*) ($($acc)*)}] () $body)
    };
    (@expr $ctx:tt [$($done:tt)*] ($($pat:tt)*) [$($acc:tt)*] ( $t:tt $($rest:tt)* ) $body:block) => {
        $crate::proptest!(@expr $ctx [$($done)*] ($($pat)*) [$($acc)* $t] ($($rest)*) $body)
    };

    // ---- internal: emit the runner ----
    (@args ($cfg:expr, $name:ident) [$({($($pat:tt)*) ($($strat:tt)*)})*] () $body:block) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::TestRng::deterministic(concat!(
            module_path!(),
            "::",
            stringify!($name)
        ));
        let mut __accepted: u32 = 0;
        let mut __rejected: u32 = 0;
        while __accepted < __config.cases {
            let __values = ( $( $crate::Strategy::sample(&($($strat)*), &mut __rng), )* );
            let __case_desc = format!("{:?}", __values);
            // A `let` destructure (rather than closure parameters) so the
            // concrete type of `__values` flows into the bindings — closure
            // param inference cannot resolve field accesses on `_`-typed
            // arguments.
            let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                (move || {
                    let ( $($($pat)*,)* ) = __values;
                    $body
                    ::core::result::Result::Ok(())
                })();
            match __outcome {
                ::core::result::Result::Ok(()) => {
                    __accepted += 1;
                }
                ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                    __rejected += 1;
                    if __rejected > __config.max_global_rejects {
                        panic!(
                            "proptest '{}': too many prop_assume! rejections ({})",
                            stringify!($name),
                            __rejected
                        );
                    }
                }
                ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                    panic!(
                        "proptest '{}' failed after {} passing case(s)\n  args: {}\n  {}",
                        stringify!($name),
                        __accepted,
                        __case_desc,
                        __msg
                    );
                }
            }
        }
    }};

    // ---- public entry points ----
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_and_strategy_args(x: u16, y in 1u64..100, v in prop::collection::vec(0u8..10, 0..8)) {
            prop_assert!((1..100).contains(&y));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&b| b < 10));
            let _ = x;
        }

        #[test]
        fn tuples_and_prop_map(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| (a, a + b))) {
            let (a, sum) = pair;
            prop_assert!(sum >= a);
        }

        #[test]
        fn assume_rejects(a: u8, b: u8) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_accepted(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn deterministic_rng_streams() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
