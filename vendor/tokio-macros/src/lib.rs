//! Offline stand-in for `tokio-macros`.
//!
//! Rewrites `async fn` items to synchronous functions that drive the body
//! on the vendored single-threaded runtime (`tokio::runtime::block_on`).
//! Attribute arguments (`flavor`, `worker_threads`) are accepted and
//! ignored — the stand-in runtime is always current-thread.

use proc_macro::{Delimiter, Group, Ident, Punct, Spacing, Span, TokenStream, TokenTree};

/// Rewrite `async fn f(..) -> T { body }` into
/// `fn f(..) -> T { tokio::runtime::block_on(async move { body }) }`,
/// optionally prefixing extra attribute tokens (e.g. `#[test]`).
fn rewrite(item: TokenStream, prefix_test_attr: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut out: Vec<TokenTree> = Vec::new();

    if prefix_test_attr {
        out.push(TokenTree::Punct(Punct::new('#', Spacing::Alone)));
        let inner: TokenStream = [TokenTree::Ident(Ident::new("test", Span::call_site()))]
            .into_iter()
            .collect();
        out.push(TokenTree::Group(Group::new(Delimiter::Bracket, inner)));
    }

    // The body is the final brace group; everything before it is the
    // signature (with `async` removed).
    let body_at = tokens
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace))
        .expect("async fn item must end in a brace-delimited body");

    for t in &tokens[..body_at] {
        if let TokenTree::Ident(id) = t {
            if id.to_string() == "async" {
                continue;
            }
        }
        out.push(t.clone());
    }

    let body = match &tokens[body_at] {
        TokenTree::Group(g) => g.stream(),
        _ => unreachable!(),
    };

    // { ::tokio::runtime::block_on(async move { body }) }
    let mut call: Vec<TokenTree> = Vec::new();
    for part in ["tokio", "runtime", "block_on"] {
        call.push(TokenTree::Punct(Punct::new(':', Spacing::Joint)));
        call.push(TokenTree::Punct(Punct::new(':', Spacing::Alone)));
        call.push(TokenTree::Ident(Ident::new(part, Span::call_site())));
    }
    let mut args: Vec<TokenTree> = vec![
        TokenTree::Ident(Ident::new("async", Span::call_site())),
        TokenTree::Ident(Ident::new("move", Span::call_site())),
        TokenTree::Group(Group::new(Delimiter::Brace, body)),
    ];
    // Fix the leading path: the loop above produced `::tokio::runtime::block_on`
    // piecewise; assemble `(async move { .. })` as its argument.
    let call_args: TokenStream = args.drain(..).collect();
    call.push(TokenTree::Group(Group::new(Delimiter::Parenthesis, call_args)));
    let new_body: TokenStream = call.into_iter().collect();
    out.push(TokenTree::Group(Group::new(Delimiter::Brace, new_body)));

    out.into_iter().collect()
}

/// `#[tokio::main]` — run the async main on the stand-in runtime.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

/// `#[tokio::test]` — run the async test on the stand-in runtime.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}
