//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derives. The workspace only ever writes
//! `#[derive(Serialize, Deserialize)]`; no format crate is present, so no
//! trait machinery is needed beyond the names resolving.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
