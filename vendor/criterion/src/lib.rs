//! Offline stand-in for `criterion`.
//!
//! Provides the macro/struct surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`, groups,
//! `iter`/`iter_batched`, throughput annotations) and actually times the
//! closures with `std::time::Instant`, printing one mean-per-iteration
//! line per benchmark. No warm-up modelling, no statistics, no reports —
//! enough to run `cargo bench` offline and eyeball regressions.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored; present for API parity).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation (printed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

// Bench harness output is the product here, not a library side effect.
#[allow(clippy::print_stdout)]
fn run_one(name: &str, samples: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // One calibration pass, then the timed pass.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters: iters * samples.max(1) as u64 / 10u64,
        elapsed: Duration::ZERO,
    };
    b.iters = b.iters.max(1);
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gbps = n as f64 / mean_ns;
            format!("  ({gbps:.3} GB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 * 1e3 / mean_ns;
            format!("  ({meps:.3} Melem/s)")
        }
        None => String::new(),
    };
    println!("bench: {name:<60} {mean_ns:>12.1} ns/iter{extra}");
}

impl Criterion {
    /// Override the number of samples (scales iteration count here).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Criterion {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.parent.sample_size, self.throughput, &mut f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
