//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! non-poisoning API shape (`lock()` returns the guard directly).

#![forbid(unsafe_code)]

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (poisoning is ignored, as in parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
