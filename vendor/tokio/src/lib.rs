//! Offline stand-in for `tokio`.
//!
//! A single-threaded cooperative runtime over nonblocking std I/O,
//! implementing exactly the subset the `livenet-transport` crate uses:
//! `spawn`/`JoinHandle`, `net::UdpSocket`, `sync::mpsc`, `time::{Instant,
//! sleep, sleep_until, timeout}`, `select!` (treated as `biased`), and the
//! `#[tokio::main]` / `#[tokio::test]` attributes. The executor busy-polls
//! all tasks with a no-op waker and a short park between rounds, which is
//! plenty for loopback-UDP integration tests; it is not a production
//! scheduler and never pretends to be multi-threaded.

#![forbid(unsafe_code)]

pub use tokio_macros::{main, test};

pub mod runtime {
    //! The cooperative executor.

    use std::cell::RefCell;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll, Waker};

    thread_local! {
        static TASKS: RefCell<Vec<Pin<Box<dyn Future<Output = ()>>>>> =
            const { RefCell::new(Vec::new()) };
        static SPAWNED: RefCell<Vec<Pin<Box<dyn Future<Output = ()>>>>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Poll a pinned future once with a no-op waker.
    pub fn poll_once<F: Future + ?Sized>(fut: Pin<&mut F>) -> Poll<F::Output> {
        let mut cx = Context::from_waker(Waker::noop());
        fut.poll(&mut cx)
    }

    pub(crate) fn enqueue(task: Pin<Box<dyn Future<Output = ()>>>) {
        SPAWNED.with(|s| s.borrow_mut().push(task));
    }

    fn poll_task_round() {
        // Move the task list out so tasks can spawn re-entrantly.
        let mut tasks = TASKS.with(|t| std::mem::take(&mut *t.borrow_mut()));
        SPAWNED.with(|s| tasks.append(&mut s.borrow_mut()));
        let mut cx = Context::from_waker(Waker::noop());
        tasks.retain_mut(|task| task.as_mut().poll(&mut cx).is_pending());
        TASKS.with(|t| t.borrow_mut().append(&mut tasks));
    }

    /// Drive `future` to completion, cooperatively polling spawned tasks.
    ///
    /// When the main future resolves, still-pending spawned tasks are
    /// dropped — the same semantics as dropping a tokio runtime.
    pub fn block_on<F: Future>(future: F) -> F::Output {
        let mut main = Box::pin(future);
        let mut cx = Context::from_waker(Waker::noop());
        loop {
            if let Poll::Ready(out) = main.as_mut().poll(&mut cx) {
                TASKS.with(|t| t.borrow_mut().clear());
                SPAWNED.with(|s| s.borrow_mut().clear());
                return out;
            }
            poll_task_round();
            // Nothing woke us specifically (no reactor); park briefly so
            // nonblocking I/O and timers are re-checked promptly without
            // spinning a core flat out.
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    }

    /// A future that reports `Pending` once, then `Ready` — lets sibling
    /// arms and tasks run between polls of a `select!` loop.
    pub struct YieldNow {
        yielded: bool,
    }

    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                Poll::Pending
            }
        }
    }

    /// Yield to the executor once.
    pub fn yield_now() -> YieldNow {
        YieldNow { yielded: false }
    }
}

pub mod task {
    //! Task handles.

    use std::cell::RefCell;
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::rc::Rc;
    use std::task::{Context, Poll};

    /// Error awaiting a task (never produced by the stand-in: tasks that
    /// panic unwind through the executor instead).
    #[derive(Debug)]
    pub struct JoinError;

    impl fmt::Display for JoinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "task failed")
        }
    }

    impl std::error::Error for JoinError {}

    /// Handle to a spawned task's result.
    pub struct JoinHandle<T> {
        pub(crate) slot: Rc<RefCell<Option<T>>>,
    }

    impl<T> fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("JoinHandle")
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            match self.slot.borrow_mut().take() {
                Some(v) => Poll::Ready(Ok(v)),
                None => Poll::Pending,
            }
        }
    }
}

/// Spawn a future onto the executor.
///
/// The stand-in runtime is single-threaded, so `Send` is not required.
pub fn spawn<F>(future: F) -> task::JoinHandle<F::Output>
where
    F: std::future::Future + 'static,
    F::Output: 'static,
{
    use std::cell::RefCell;
    use std::rc::Rc;
    let slot: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    runtime::enqueue(Box::pin(async move {
        let v = future.await;
        *out.borrow_mut() = Some(v);
    }));
    task::JoinHandle { slot }
}

pub mod net {
    //! Nonblocking std sockets with async accessors.

    use std::io;
    use std::net::{SocketAddr, ToSocketAddrs};

    /// A UDP socket usable from async code.
    #[derive(Debug)]
    pub struct UdpSocket {
        inner: std::net::UdpSocket,
    }

    impl UdpSocket {
        /// Bind a socket (nonblocking).
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
            let inner = std::net::UdpSocket::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(UdpSocket { inner })
        }

        /// The bound local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Receive one datagram.
        pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
            futures_util::RecvFrom { sock: &self.inner, buf }.await
        }

        /// Send one datagram.
        pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
            let addr = target
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
            futures_util::SendTo { sock: &self.inner, buf, addr }.await
        }
    }

    mod futures_util {
        use std::future::Future;
        use std::io;
        use std::net::SocketAddr;
        use std::pin::Pin;
        use std::task::{Context, Poll};

        pub struct RecvFrom<'a, 'b> {
            pub sock: &'a std::net::UdpSocket,
            pub buf: &'b mut [u8],
        }

        impl Future for RecvFrom<'_, '_> {
            type Output = io::Result<(usize, SocketAddr)>;
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
                let me = self.get_mut();
                match me.sock.recv_from(me.buf) {
                    Ok(v) => Poll::Ready(Ok(v)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                    Err(e) => Poll::Ready(Err(e)),
                }
            }
        }

        pub struct SendTo<'a, 'b> {
            pub sock: &'a std::net::UdpSocket,
            pub buf: &'b [u8],
            pub addr: SocketAddr,
        }

        impl Future for SendTo<'_, '_> {
            type Output = io::Result<usize>;
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
                let me = self.get_mut();
                match me.sock.send_to(me.buf, me.addr) {
                    Ok(n) => Poll::Ready(Ok(n)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
                    Err(e) => Poll::Ready(Err(e)),
                }
            }
        }
    }
}

pub mod sync {
    //! Synchronization primitives.

    pub mod mpsc {
        //! Multi-producer, single-consumer channels (single-threaded stand-in).

        use std::cell::RefCell;
        use std::collections::VecDeque;
        use std::fmt;
        use std::future::Future;
        use std::pin::Pin;
        use std::rc::Rc;
        use std::task::{Context, Poll};

        struct Chan<T> {
            queue: VecDeque<T>,
            senders: usize,
            rx_alive: bool,
        }

        /// Error returned when sending on a closed channel.
        pub struct SendError<T>(pub T);

        impl<T> fmt::Debug for SendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("SendError(..)")
            }
        }

        /// Error returned by `try_recv` on an empty or closed channel.
        #[derive(Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            /// Channel currently empty.
            Empty,
            /// All senders dropped and the queue is drained.
            Disconnected,
        }

        /// Bounded sender (capacity is advisory in the stand-in).
        pub struct Sender<T> {
            chan: Rc<RefCell<Chan<T>>>,
        }

        /// Bounded receiver.
        pub struct Receiver<T> {
            chan: Rc<RefCell<Chan<T>>>,
        }

        /// Unbounded sender.
        pub struct UnboundedSender<T> {
            chan: Rc<RefCell<Chan<T>>>,
        }

        /// Unbounded receiver.
        pub struct UnboundedReceiver<T> {
            chan: Rc<RefCell<Chan<T>>>,
        }

        impl<T> fmt::Debug for Sender<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("Sender")
            }
        }
        impl<T> fmt::Debug for Receiver<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("Receiver")
            }
        }
        impl<T> fmt::Debug for UnboundedSender<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("UnboundedSender")
            }
        }
        impl<T> fmt::Debug for UnboundedReceiver<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("UnboundedReceiver")
            }
        }

        fn new_chan<T>() -> Rc<RefCell<Chan<T>>> {
            Rc::new(RefCell::new(Chan {
                queue: VecDeque::new(),
                senders: 1,
                rx_alive: true,
            }))
        }

        /// Create a bounded channel (capacity advisory).
        pub fn channel<T>(_capacity: usize) -> (Sender<T>, Receiver<T>) {
            let chan = new_chan();
            (
                Sender { chan: Rc::clone(&chan) },
                Receiver { chan },
            )
        }

        /// Create an unbounded channel.
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let chan = new_chan();
            (
                UnboundedSender { chan: Rc::clone(&chan) },
                UnboundedReceiver { chan },
            )
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Sender<T> {
                self.chan.borrow_mut().senders += 1;
                Sender { chan: Rc::clone(&self.chan) }
            }
        }
        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> UnboundedSender<T> {
                self.chan.borrow_mut().senders += 1;
                UnboundedSender { chan: Rc::clone(&self.chan) }
            }
        }
        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                self.chan.borrow_mut().senders -= 1;
            }
        }
        impl<T> Drop for UnboundedSender<T> {
            fn drop(&mut self) {
                self.chan.borrow_mut().senders -= 1;
            }
        }
        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                self.chan.borrow_mut().rx_alive = false;
            }
        }
        impl<T> Drop for UnboundedReceiver<T> {
            fn drop(&mut self) {
                self.chan.borrow_mut().rx_alive = false;
            }
        }

        fn push<T>(chan: &Rc<RefCell<Chan<T>>>, value: T) -> Result<(), SendError<T>> {
            let mut c = chan.borrow_mut();
            if !c.rx_alive {
                return Err(SendError(value));
            }
            c.queue.push_back(value);
            Ok(())
        }

        impl<T> Sender<T> {
            /// Send a value (never applies backpressure in the stand-in).
            pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
                push(&self.chan, value)
            }
        }

        impl<T> UnboundedSender<T> {
            /// Send a value.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                push(&self.chan, value)
            }
        }

        /// Future returned by `recv`.
        pub struct Recv<'a, T> {
            chan: &'a Rc<RefCell<Chan<T>>>,
        }

        impl<T> Future for Recv<'_, T> {
            type Output = Option<T>;
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Option<T>> {
                let mut c = self.chan.borrow_mut();
                match c.queue.pop_front() {
                    Some(v) => Poll::Ready(Some(v)),
                    None if c.senders == 0 => Poll::Ready(None),
                    None => Poll::Pending,
                }
            }
        }

        fn try_recv_impl<T>(chan: &Rc<RefCell<Chan<T>>>) -> Result<T, TryRecvError> {
            let mut c = chan.borrow_mut();
            match c.queue.pop_front() {
                Some(v) => Ok(v),
                None if c.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        impl<T> Receiver<T> {
            /// Receive the next value, or `None` once all senders are gone.
            pub fn recv(&mut self) -> Recv<'_, T> {
                Recv { chan: &self.chan }
            }

            /// Non-blocking receive.
            pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
                try_recv_impl(&self.chan)
            }
        }

        impl<T> UnboundedReceiver<T> {
            /// Receive the next value, or `None` once all senders are gone.
            pub fn recv(&mut self) -> Recv<'_, T> {
                Recv { chan: &self.chan }
            }

            /// Non-blocking receive.
            pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
                try_recv_impl(&self.chan)
            }
        }
    }
}

pub mod time {
    //! Timers on the std monotonic clock.

    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};
    use std::time::Duration;

    /// Monotonic instant (wraps `std::time::Instant`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct Instant(std::time::Instant);

    impl Instant {
        /// The current instant.
        pub fn now() -> Instant {
            Instant(std::time::Instant::now())
        }

        /// Time elapsed since this instant.
        pub fn elapsed(&self) -> Duration {
            self.0.elapsed()
        }

        /// Saturating difference.
        pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
            self.0.saturating_duration_since(earlier.0)
        }
    }

    impl std::ops::Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, rhs: Duration) -> Instant {
            Instant(self.0 + rhs)
        }
    }

    impl std::ops::Sub<Instant> for Instant {
        type Output = Duration;
        fn sub(self, rhs: Instant) -> Duration {
            self.0 - rhs.0
        }
    }

    /// Future resolving at a deadline.
    #[derive(Debug)]
    pub struct Sleep {
        deadline: std::time::Instant,
    }

    impl Future for Sleep {
        type Output = ();
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            if std::time::Instant::now() >= self.deadline {
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        }
    }

    /// Sleep for a duration.
    pub fn sleep(duration: Duration) -> Sleep {
        Sleep {
            deadline: std::time::Instant::now() + duration,
        }
    }

    /// Sleep until an instant.
    pub fn sleep_until(deadline: Instant) -> Sleep {
        Sleep { deadline: deadline.0 }
    }

    pub mod error {
        //! Timer errors.

        /// The timeout elapsed before the inner future resolved.
        #[derive(Debug)]
        pub struct Elapsed;

        impl std::fmt::Display for Elapsed {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("deadline has elapsed")
            }
        }

        impl std::error::Error for Elapsed {}
    }

    /// Future returned by [`timeout`].
    pub struct Timeout<F: Future> {
        inner: Pin<Box<F>>,
        deadline: std::time::Instant,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, error::Elapsed>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let me = self.get_mut();
            if let Poll::Ready(v) = me.inner.as_mut().poll(cx) {
                return Poll::Ready(Ok(v));
            }
            if std::time::Instant::now() >= me.deadline {
                return Poll::Ready(Err(error::Elapsed));
            }
            Poll::Pending
        }
    }

    /// Bound a future by a wall-clock duration.
    pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
        Timeout {
            inner: Box::pin(future),
            deadline: std::time::Instant::now() + duration,
        }
    }
}

/// Biased-order select over 2–4 async arms.
///
/// The stand-in always polls arms top-to-bottom (the `biased;` behaviour);
/// without the keyword the semantics are identical.
#[macro_export]
macro_rules! select {
    (biased; $($arms:tt)+) => { $crate::select_internal!($($arms)+) };
    ($($arms:tt)+) => { $crate::select_internal!($($arms)+) };
}

/// Internal expansion of [`select!`] — do not use directly.
#[macro_export]
macro_rules! select_internal {
    ($p0:pat = $f0:expr => $b0:block $p1:pat = $f1:expr => $b1:block) => {{
        enum __Sel<T0, T1> {
            A(T0),
            B(T1),
        }
        let __choice = {
            let mut __f0 = ::std::boxed::Box::pin($f0);
            let mut __f1 = ::std::boxed::Box::pin($f1);
            loop {
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f0.as_mut()) {
                    break __Sel::A(v);
                }
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f1.as_mut()) {
                    break __Sel::B(v);
                }
                $crate::runtime::yield_now().await;
            }
        };
        match __choice {
            __Sel::A($p0) => $b0,
            __Sel::B($p1) => $b1,
        }
    }};
    ($p0:pat = $f0:expr => $b0:block $p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block) => {{
        enum __Sel<T0, T1, T2> {
            A(T0),
            B(T1),
            C(T2),
        }
        let __choice = {
            let mut __f0 = ::std::boxed::Box::pin($f0);
            let mut __f1 = ::std::boxed::Box::pin($f1);
            let mut __f2 = ::std::boxed::Box::pin($f2);
            loop {
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f0.as_mut()) {
                    break __Sel::A(v);
                }
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f1.as_mut()) {
                    break __Sel::B(v);
                }
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f2.as_mut()) {
                    break __Sel::C(v);
                }
                $crate::runtime::yield_now().await;
            }
        };
        match __choice {
            __Sel::A($p0) => $b0,
            __Sel::B($p1) => $b1,
            __Sel::C($p2) => $b2,
        }
    }};
    ($p0:pat = $f0:expr => $b0:block $p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block $p3:pat = $f3:expr => $b3:block) => {{
        enum __Sel<T0, T1, T2, T3> {
            A(T0),
            B(T1),
            C(T2),
            D(T3),
        }
        let __choice = {
            let mut __f0 = ::std::boxed::Box::pin($f0);
            let mut __f1 = ::std::boxed::Box::pin($f1);
            let mut __f2 = ::std::boxed::Box::pin($f2);
            let mut __f3 = ::std::boxed::Box::pin($f3);
            loop {
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f0.as_mut()) {
                    break __Sel::A(v);
                }
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f1.as_mut()) {
                    break __Sel::B(v);
                }
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f2.as_mut()) {
                    break __Sel::C(v);
                }
                if let ::core::task::Poll::Ready(v) = $crate::runtime::poll_once(__f3.as_mut()) {
                    break __Sel::D(v);
                }
                $crate::runtime::yield_now().await;
            }
        };
        match __choice {
            __Sel::A($p0) => $b0,
            __Sel::B($p1) => $b1,
            __Sel::C($p2) => $b2,
            __Sel::D($p3) => $b3,
        }
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn block_on_with_spawn_and_channels() {
        let out = crate::runtime::block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel::<u32>();
            let handle = crate::spawn(async move {
                tx.send(7).unwrap();
                crate::time::sleep(std::time::Duration::from_millis(5)).await;
                tx.send(8).unwrap();
                21u32
            });
            let a = rx.recv().await.unwrap();
            let b = rx.recv().await.unwrap();
            let c = handle.await.unwrap();
            a + b + c
        });
        assert_eq!(out, 36);
    }

    #[test]
    fn timeout_and_select() {
        crate::runtime::block_on(async {
            let fast = crate::time::timeout(
                std::time::Duration::from_millis(100),
                async { 5u8 },
            )
            .await;
            assert_eq!(fast.unwrap(), 5);
            let slow = crate::time::timeout(
                std::time::Duration::from_millis(10),
                crate::time::sleep(std::time::Duration::from_millis(200)),
            )
            .await;
            assert!(slow.is_err());

            let v = crate::select! {
                biased;
                _ = crate::time::sleep(std::time::Duration::from_millis(1)) => { 1u8 }
                _ = crate::time::sleep(std::time::Duration::from_millis(500)) => { 2u8 }
            };
            assert_eq!(v, 1);
        });
    }

    #[test]
    fn udp_loopback() {
        crate::runtime::block_on(async {
            let a = crate::net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b = crate::net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let dest = b.local_addr().unwrap();
            a.send_to(b"ping", dest).await.unwrap();
            let mut buf = [0u8; 16];
            let (n, from) = b.recv_from(&mut buf).await.unwrap();
            assert_eq!(&buf[..n], b"ping");
            assert_eq!(from, a.local_addr().unwrap());
        });
    }
}
