//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact subset this workspace uses: `SmallRng` (the same
//! xoshiro256++ generator with SplitMix64 `seed_from_u64` expansion the real
//! `rand 0.8` uses on 64-bit targets), the `Rng`/`SeedableRng` traits, the
//! `gen`/`gen_range` surface for the unsigned/float/usize ranges that appear
//! in the code, and nothing else. Streams are deterministic functions of the
//! seed, which is all the workspace's reproducibility contract requires.

#![forbid(unsafe_code)]

/// Random number generators.
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        // SplitMix64 expansion, as rand_core does for integer seeds.
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

/// Sampling of a "standard" value of a type (uniform bits; floats in [0,1)).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits over [0, 1), as the real Standard distribution.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Integer ranges replicate rand 0.8.5's `sample_single_inclusive` exactly
// (widening multiply with zone rejection), so that a given seed produces
// the same draw sequence — and consumes the same number of generator
// outputs — as the real crate. Types at or below 16 bits use the modulus
// zone over a 32-bit working width; wider types use the shift
// approximation over their own width.
macro_rules! int_range_32 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                (self.start..=self.end - 1).sample_from(rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let range = (hi as u32).wrapping_sub(lo as u32).wrapping_add(1);
                if range == 0 {
                    return <u32 as Standard>::sample(rng) as $t;
                }
                let zone = if <$t>::MAX as u32 <= u16::MAX as u32 {
                    let ints_to_reject = (u32::MAX - range + 1) % range;
                    u32::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <u32 as Standard>::sample(rng);
                    let m = u64::from(v) * u64::from(range);
                    let (hi_w, lo_w) = ((m >> 32) as u32, m as u32);
                    if lo_w <= zone {
                        return lo.wrapping_add(hi_w as $t);
                    }
                }
            }
        }
    )*};
}
int_range_32!(u8, u16, u32);

macro_rules! int_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                (self.start..=self.end - 1).sample_from(rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let range = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if range == 0 {
                    return rng.next_u64() as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = u128::from(v) * u128::from(range);
                    let (hi_w, lo_w) = ((m >> 64) as u64, m as u64);
                    if lo_w <= zone {
                        return lo.wrapping_add(hi_w as $t);
                    }
                }
            }
        }
    )*};
}
int_range_64!(u64, usize);

// Float ranges replicate rand 0.8.5's single-sample method: draw a
// mantissa-uniform value in [1, 2), scale into the range, reject the rare
// boundary overshoot. One generator output per accepted draw, like the
// real crate.
impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let scale = self.end - self.start;
        loop {
            let bits = <u32 as Standard>::sample(rng);
            let value1_2 = f32::from_bits((bits >> 9) | (127u32 << 23));
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
        }
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draw a standard value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
