//! # LiveNet — a low-latency video transport network (SIGCOMM '22 reproduction)
//!
//! This workspace is a from-scratch Rust reproduction of *LiveNet: A
//! Low-Latency Video Transport Network for Large-Scale Live Streaming*
//! (Li et al., SIGCOMM 2022): Alibaba's flat-CDN live streaming transport
//! with a centralized controller (the **Streaming Brain**) and a fast/slow
//! path data plane with fine-grained frame control.
//!
//! The umbrella crate re-exports every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `livenet-types` | IDs, simulated time, bandwidth, statistics |
//! | [`packet`] | `livenet-packet` | RTP/RTCP wire formats, delay-field extension, packetization |
//! | [`media`] | `livenet-media` | GoP model, encoders, simulcast ladders |
//! | [`emu`] | `livenet-emu` | deterministic discrete-event network emulator |
//! | [`topology`] | `livenet-topology` | overlay graph, geo generator, global view |
//! | [`cc`] | `livenet-cc` | GCC congestion control + priority pacer |
//! | [`brain`] | `livenet-brain` | Global Discovery/Routing, PIB/SIB, Path Decision |
//! | [`node`] | `livenet-node` | the overlay node: Stream FIB, fast/slow paths, GoP cache |
//! | [`hier`] | `livenet-hier` | the hierarchical-CDN baseline (Hier) |
//! | [`sim`] | `livenet-sim` | packet-level and fleet-level evaluation harnesses |
//! | [`replication`] | `livenet-replication` | Paxos log replicating Brain state |
//! | [`transport`] | `livenet-transport` | tokio/UDP driver for the same cores |
//!
//! ## Quickstart
//!
//! ```
//! use livenet::prelude::*;
//!
//! // Generate a CDN footprint, start the Brain, register a stream, and
//! // ask for a path the way a consumer node would (Algorithm 1).
//! let geo = GeoTopology::generate(&GeoConfig::tiny(1));
//! let nodes: Vec<NodeId> = geo.topology.routable_node_ids().collect();
//! let mut brain = StreamingBrain::new(geo.topology, BrainConfig::default());
//! brain.register_stream(StreamId::new(42), nodes[0]);
//! let assignment = brain
//!     .path_request(StreamId::new(42), nodes[4], SimTime::ZERO)
//!     .expect("stream registered");
//! assert_eq!(assignment.producer, nodes[0]);
//! assert!(!assignment.paths.is_empty());
//! assert!(assignment.hops() <= 3); // the paper's hop constraint
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the per-table/figure experiment harness (EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use livenet_brain as brain;
pub use livenet_cc as cc;
pub use livenet_emu as emu;
pub use livenet_hier as hier;
pub use livenet_media as media;
pub use livenet_node as node;
pub use livenet_packet as packet;
pub use livenet_replication as replication;
pub use livenet_sim as sim;
pub use livenet_topology as topology;
pub use livenet_transport as transport;
pub use livenet_types as types;

/// The most common imports for building on LiveNet.
pub mod prelude {
    pub use livenet_brain::{
        BrainConfig, OverlayPath, PathAssignment, PathLookup, StreamingBrain,
    };
    pub use livenet_cc::{GccSender, PacedPacket, Pacer, PacerConfig, SendPriority};
    pub use livenet_media::{
        EncodedFrame, FrameKind, GopConfig, Rendition, SimulcastLadder, VideoEncoder,
    };
    pub use livenet_node::{
        NodeAction, NodeConfig, NodeEvent, OverlayMsg, OverlayNode, StreamFib, Subscriber,
    };
    pub use livenet_packet::{MediaKind, Packetizer, RtcpPacket, RtpPacket};
    pub use livenet_sim::{
        FleetConfig, FleetConfigBuilder, FleetReport, FleetRunner, FleetSim, PacketSim,
        PacketSimConfig, SessionRecord,
    };
    pub use livenet_topology::{GeoConfig, GeoTopology, Topology};
    pub use livenet_types::{
        Bandwidth, ClientId, NodeId, SeqNo, SimDuration, SimTime, StreamId,
    };
}
