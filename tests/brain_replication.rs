//! Cross-crate integration: replicating Streaming Brain state through the
//! Paxos log (§7.1 — "we maintain consistency using a Paxos-like scheme").
//!
//! Serialized SIB updates are proposed by one Brain replica's site and
//! learned by the others; every replica replays the same update sequence
//! and therefore answers path requests identically.

use livenet::prelude::*;
use livenet::replication::Replica;
use livenet::types::DetRng;

/// A serialized control-plane update.
#[derive(Debug, Clone, PartialEq)]
enum SibUpdate {
    Register { stream: StreamId, producer: NodeId },
    Unregister { stream: StreamId },
}

impl SibUpdate {
    fn encode(&self) -> Vec<u8> {
        match self {
            SibUpdate::Register { stream, producer } => {
                let mut v = vec![1u8];
                v.extend_from_slice(&stream.raw().to_be_bytes());
                v.extend_from_slice(&producer.raw().to_be_bytes());
                v
            }
            SibUpdate::Unregister { stream } => {
                let mut v = vec![2u8];
                v.extend_from_slice(&stream.raw().to_be_bytes());
                v
            }
        }
    }

    fn decode(bytes: &[u8]) -> SibUpdate {
        let u64_at = |off: usize| {
            u64::from_be_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
        };
        match bytes[0] {
            1 => SibUpdate::Register {
                stream: StreamId::new(u64_at(1)),
                producer: NodeId::new(u64_at(9)),
            },
            2 => SibUpdate::Unregister {
                stream: StreamId::new(u64_at(1)),
            },
            other => panic!("bad tag {other}"),
        }
    }
}

/// Drive a 3-replica Paxos cluster to consensus on a batch of updates,
/// with random message reordering and loss.
fn replicate(updates: &[SibUpdate], seed: u64, loss: f64) -> Vec<Vec<SibUpdate>> {
    let ids: Vec<u32> = (0..3).collect();
    let mut replicas: Vec<Replica> = ids.iter().map(|&i| Replica::new(i, ids.clone())).collect();
    let mut rng = DetRng::seed(seed);
    let mut inflight: Vec<(u32, livenet::replication::paxos::Outbound)> = Vec::new();

    for (i, u) in updates.iter().enumerate() {
        // Rotate the proposing site (any replica may receive the update).
        let proposer = (i % 3) as u32;
        let (_, out) = replicas[proposer as usize].propose(u.encode());
        for o in out {
            inflight.push((proposer, o));
        }
        // Pump the network until quiet, with retries under loss.
        let mut round = 0;
        loop {
            let mut steps = 0;
            while !inflight.is_empty() && steps < 100_000 {
                let idx = rng.range_u64(0, inflight.len() as u64) as usize;
                let (from, o) = inflight.swap_remove(idx);
                if rng.chance(loss) {
                    continue;
                }
                let out = replicas[o.to as usize].handle(from, o.msg);
                for oo in out {
                    inflight.push((o.to, oo));
                }
                steps += 1;
            }
            if replicas[proposer as usize].decided(i as u64).is_some() || round > 20 {
                break;
            }
            round += 1;
            let out = replicas[proposer as usize].propose_in_slot(
                i as u64,
                u.encode(),
                round * 3,
            );
            for o in out {
                inflight.push((proposer, o));
            }
        }
    }
    replicas
        .iter()
        .map(|r| r.log_prefix().iter().map(|v| SibUpdate::decode(v)).collect())
        .collect()
}

#[test]
fn replicas_replay_identical_sib_logs() {
    let updates = vec![
        SibUpdate::Register {
            stream: StreamId::new(1),
            producer: NodeId::new(10),
        },
        SibUpdate::Register {
            stream: StreamId::new(2),
            producer: NodeId::new(20),
        },
        SibUpdate::Unregister {
            stream: StreamId::new(1),
        },
        SibUpdate::Register {
            stream: StreamId::new(3),
            producer: NodeId::new(10),
        },
    ];
    let logs = replicate(&updates, 99, 0.1);
    for log in &logs {
        assert_eq!(*log, updates, "a replica diverged");
    }
}

#[test]
fn replayed_brains_answer_identically() {
    let geo = GeoTopology::generate(&GeoConfig::tiny(5));
    let nodes: Vec<NodeId> = geo.topology.routable_node_ids().collect();
    let updates = vec![
        SibUpdate::Register {
            stream: StreamId::new(7),
            producer: nodes[0],
        },
        SibUpdate::Register {
            stream: StreamId::new(8),
            producer: nodes[1],
        },
    ];
    let logs = replicate(&updates, 7, 0.05);

    // Each replica replays its log into its own Brain instance.
    let mut answers = Vec::new();
    for log in logs {
        let mut brain = StreamingBrain::new(geo.topology.clone(), BrainConfig::default());
        for u in log {
            match u {
                SibUpdate::Register { stream, producer } => {
                    brain.register_stream(stream, producer)
                }
                SibUpdate::Unregister { stream } => brain.unregister_stream(stream),
            }
        }
        let lookup = brain
            .path_request(StreamId::new(7), nodes[4], SimTime::ZERO)
            .expect("replicated stream known");
        answers.push(lookup.paths[0].nodes.clone());
    }
    assert!(answers.windows(2).all(|w| w[0] == w[1]));
}
