//! Cross-crate integration: Brain-computed paths drive real overlay-node
//! state machines over the emulator on a generated geo topology.

use bytes::Bytes;
use livenet::emu::{LinkConfig, LossModel, NetSim};
use livenet::prelude::*;
use livenet::sim::adapter::{apply_node_actions, client_host_id, EmuHost};

const STREAM: StreamId = StreamId(42);

/// Build an emulated overlay whose link parameters mirror the Brain's
/// topology view, attach a viewer via a Brain-computed path, and stream.
fn run_scenario(seed: u64, loss: f64) -> (u64, u32, usize) {
    let geo = GeoTopology::generate(&GeoConfig::tiny(seed));
    let nodes: Vec<NodeId> = geo.topology.routable_node_ids().collect();
    let mut brain = StreamingBrain::new(geo.topology.clone(), BrainConfig::default());

    let producer = nodes[0];
    let consumer = nodes[nodes.len() - 1];
    brain.register_stream(STREAM, producer);
    let lookup = brain
        .path_request(STREAM, consumer, SimTime::ZERO)
        .expect("path");
    let path = lookup.paths[0].nodes.clone();
    assert!(path.len() >= 2, "need a real path");

    // Emulate exactly the nodes on the path, with the topology's RTTs.
    let mut sim: NetSim<EmuHost> = NetSim::new(seed);
    for &id in &path {
        let mut node = OverlayNode::new(NodeConfig::new(id));
        for &other in &path {
            if other != id {
                if let Some(l) = geo.topology.link(id, other) {
                    node.set_neighbor_rtt(other, l.rtt);
                }
            }
        }
        sim.add_host(id, EmuHost::node(node));
    }
    for w in path.windows(2) {
        let l = geo.topology.link(w[0], w[1]).expect("link");
        sim.add_duplex(
            w[0],
            w[1],
            LinkConfig {
                delay: l.rtt / 2,
                bandwidth: Bandwidth::from_gbps(1),
                queue_bytes: 4 << 20,
                loss: if loss > 0.0 {
                    LossModel::Bernoulli { p: loss }
                } else {
                    LossModel::None
                },
                jitter: SimDuration::ZERO,
            },
        );
    }
    let client = ClientId::new(1);
    let chost = client_host_id(client);
    sim.add_host(
        chost,
        EmuHost::client(client, SimTime::ZERO, 15, SimDuration::from_millis(300)),
    );
    sim.add_duplex(consumer, chost, LinkConfig::backbone(SimDuration::from_millis(10)));

    sim.with_host(producer, |h, _| {
        h.as_node_mut().expect("node").node.register_producer(STREAM, None);
    });
    let attach_path = path.clone();
    sim.with_host(consumer, |h, ctx| {
        let s = h.as_node_mut().expect("node");
        let mut actions = Vec::new();
        s.node.client_attach(
            ctx.now(),
            client,
            STREAM,
            Some(Bandwidth::from_mbps(50)),
            Some(&attach_path),
            &mut actions,
        );
        apply_node_actions(s, ctx, actions);
    });

    // Stream 5 seconds of video.
    let start = SimTime::from_millis(200);
    let mut enc = VideoEncoder::new(STREAM, GopConfig::default(), Bandwidth::from_mbps(2), start);
    let end = start + SimDuration::from_secs(5);
    while enc.next_capture_time() < end {
        let t = enc.next_capture_time();
        sim.run_until(t);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        sim.with_host(producer, |h, ctx| {
            let s = h.as_node_mut().expect("node");
            let actions = s.node.ingest_frame(ctx.now(), &frame, &payload);
            apply_node_actions(s, ctx, actions);
        });
    }
    let finish = end + SimDuration::from_secs(2);
    sim.run_until(finish);

    let (_, qoe) = sim
        .remove_host(chost)
        .expect("client")
        .finish_client(finish)
        .expect("client qoe");
    (qoe.frames_rendered, qoe.stalls, path.len() - 1)
}

#[test]
fn brain_path_streams_end_to_end_lossless() {
    let (frames, stalls, hops) = run_scenario(3, 0.0);
    assert!((1..=3).contains(&hops), "hops={hops}");
    assert!(frames >= 70, "only {frames} frames rendered");
    assert_eq!(stalls, 0);
}

#[test]
fn brain_path_survives_backbone_loss() {
    // Paper-peak loss (0.175%): zero stalls. At 10× the paper's worst
    // case, recovery still keeps the stream playing with at most a single
    // brief stall over the whole view.
    let (frames, stalls, _) = run_scenario(4, 0.00175);
    assert!(frames >= 70, "only {frames} frames");
    assert_eq!(stalls, 0);
    let (frames, stalls, _) = run_scenario(4, 0.0175);
    assert!(frames >= 70, "10x loss: only {frames} frames");
    assert!(stalls <= 1, "10x loss: {stalls} stalls");
}

#[test]
fn different_seeds_pick_valid_paths() {
    for seed in 5..9 {
        let (frames, _, hops) = run_scenario(seed, 0.001);
        assert!(hops <= 3, "seed {seed}: hop bound violated");
        assert!(frames > 60, "seed {seed}: {frames} frames");
    }
}
