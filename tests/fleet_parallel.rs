//! Determinism contract of the sharded fleet runner: `run_parallel(n)`
//! must be bit-identical to `run_serial()` for every seed and thread
//! count, the partition must keep per-shard load within bounded skew,
//! and the sharded run must preserve the paper's headline
//! LiveNet-vs-Hier gap.

use livenet::prelude::*;
use livenet::sim::metrics::summarize;
use livenet::sim::partition_channels;

/// A sharded config small enough to run serial + three parallel widths
/// per seed: the smoke preset at a reduced arrival rate.
fn sharded(seed: u64) -> FleetConfig {
    FleetConfigBuilder::smoke(seed)
        .peak_arrivals_per_sec(0.25)
        .build()
        .expect("smoke preset is valid")
}

#[test]
fn parallel_bit_identical_to_serial_across_seeds_and_widths() {
    for seed in [71, 72] {
        let runner = FleetRunner::new(sharded(seed)).unwrap();
        let serial = runner.run_serial();
        assert!(
            !serial.livenet.is_empty(),
            "seed {seed}: empty sharded run"
        );
        for threads in [1, 2, 8] {
            let parallel = runner.run_parallel(threads);
            assert!(
                serial.bit_identical(&parallel),
                "seed {seed}: run_parallel({threads}) diverged from run_serial()"
            );
        }
    }
}

#[test]
fn zipf_head_load_is_balanced_across_shards() {
    let cfg = sharded(81);
    let plans = partition_channels(&cfg);
    assert!(plans.len() > 1, "expected a real partition");
    // Regression for the LPT partition: the Zipf head spreads across
    // shards (the old head-group rule co-sharded it and capped speedup at
    // ~1/head_mass), and no shard exceeds the ideal mass share by more
    // than the heaviest single channel.
    let max_share = plans.iter().map(|p| p.mass_share).fold(0.0, f64::max);
    let ideal = 1.0 / plans.len() as f64;
    let zipf = livenet::types::ZipfTable::new(cfg.workload.channels, cfg.workload.zipf_s);
    let total_mass: f64 = (0..cfg.workload.channels).map(|k| zipf.pmf(k)).sum();
    let heaviest = zipf.pmf(0) / total_mass;
    assert!(
        max_share <= ideal + heaviest + 1e-9,
        "max shard share {max_share:.4} exceeds ideal {ideal:.4} + head"
    );
    // The two most popular channels must not share a shard.
    let owner = |c: usize| plans.iter().find(|p| p.channels.contains(&c)).unwrap().index;
    assert_ne!(owner(0), owner(1), "ranks 0 and 1 co-sharded");
    // Every channel is assigned exactly once and the mass shares cover
    // the whole distribution.
    let mut seen = vec![0u32; cfg.workload.channels];
    for p in &plans {
        for &c in &p.channels {
            seen[c] += 1;
        }
    }
    assert!(seen.iter().all(|&n| n == 1));
    let total: f64 = plans.iter().map(|p| p.mass_share).sum();
    assert!((total - 1.0).abs() < 1e-9, "mass shares sum to {total}");
}

#[test]
fn sharded_run_preserves_headline_metrics() {
    let report = FleetRunner::new(sharded(91)).unwrap().run_serial();
    let ln = summarize(&report.livenet);
    let h = summarize(&report.hier);
    assert!(ln.median_cdn_delay_ms < h.median_cdn_delay_ms);
    assert!(ln.median_path_len < h.median_path_len);
    assert!(ln.zero_stall_ratio >= h.zero_stall_ratio);
    // Sessions are globally time-ordered after the canonical merge, and
    // the LiveNet/Hier pairing survived it.
    for w in report.livenet.windows(2) {
        assert!(w[0].start <= w[1].start);
    }
    for (a, b) in report.livenet.iter().zip(&report.hier) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.international, b.international);
    }
}
