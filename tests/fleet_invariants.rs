//! Cross-crate invariants of the fleet evaluation: the properties every
//! paper figure relies on, checked on a fast smoke run.

use livenet::prelude::*;
use livenet::sim::metrics::summarize;

fn smoke(seed: u64) -> FleetReport {
    FleetSim::new(FleetConfig::smoke(seed)).run()
}

#[test]
fn sessions_are_paired_and_sane() {
    let r = smoke(11);
    assert_eq!(r.livenet.len(), r.hier.len());
    assert!(r.livenet.len() > 300);
    for (a, b) in r.livenet.iter().zip(&r.hier) {
        // Same session, two systems: identical identity fields.
        assert_eq!(a.start, b.start);
        assert_eq!(a.day, b.day);
        assert_eq!(a.international, b.international);
        // Metric sanity.
        assert!(a.cdn_delay_ms > 0.0 && a.cdn_delay_ms < 5_000.0);
        assert!(a.streaming_delay_ms > a.cdn_delay_ms);
        assert!(a.startup_ms > 0.0);
        assert!(b.path_len == 4, "Hier is always 4 hops");
    }
}

#[test]
fn headline_improvements_hold_on_any_seed() {
    for seed in [21, 22, 23] {
        let r = smoke(seed);
        let ln = summarize(&r.livenet);
        let h = summarize(&r.hier);
        assert!(
            ln.median_cdn_delay_ms < h.median_cdn_delay_ms,
            "seed {seed}: CDN delay"
        );
        assert!(
            ln.median_streaming_delay_ms < h.median_streaming_delay_ms,
            "seed {seed}: streaming delay"
        );
        assert!(ln.zero_stall_ratio >= h.zero_stall_ratio, "seed {seed}: stalls");
        assert!(ln.median_path_len < h.median_path_len, "seed {seed}: length");
    }
}

#[test]
fn path_lengths_respect_bounds() {
    let r = smoke(31);
    let cfg = FleetConfig::smoke(31);
    for s in &r.livenet {
        assert!(
            usize::from(s.path_len) <= cfg.long_chain_switch_hops,
            "chain bound violated: {}",
            s.path_len
        );
    }
    // The hop-3 computed bound holds for the overwhelming majority.
    let over = r.livenet.iter().filter(|s| s.path_len > 3).count() as f64;
    let frac = over / r.livenet.len() as f64;
    assert!(frac < 0.05);
}

#[test]
fn local_hits_never_pay_brain_latency() {
    let r = smoke(41);
    for s in &r.livenet {
        if s.outcome.is_local_hit() {
            assert!(s.outcome.response_ms().is_none());
        }
    }
    // And some hits exist even in a short run.
    assert!(r.livenet.iter().any(|s| s.outcome.is_local_hit()));
    assert!(r.livenet.iter().any(|s| !s.outcome.is_local_hit()));
}

#[test]
fn fleet_is_deterministic() {
    let a = smoke(51);
    let b = smoke(51);
    assert_eq!(a.livenet, b.livenet);
    assert_eq!(a.hier, b.hier);
    assert_eq!(a.daily_unique_paths, b.daily_unique_paths);
}

#[test]
fn loss_stays_under_paper_cap() {
    let r = smoke(61);
    for &l in r.hourly_loss.iter().filter(|l| !l.is_nan()) {
        assert!(l < 0.00175, "hourly loss {l} exceeds the paper's cap");
    }
}
