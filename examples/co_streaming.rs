//! Co-streaming with seamless stream switching (§5.2).
//!
//! Two broadcasters co-stream: the viewer's consumer node resubscribes to
//! the co-broadcast stream on the client's behalf and flips the client
//! only once a complete GoP is cached — no stall, no client logic.
//!
//! ```sh
//! cargo run --release --example co_streaming
//! ```

use bytes::Bytes;
use livenet::emu::{LinkConfig, NetSim};
use livenet::prelude::*;
use livenet::sim::adapter::{client_host_id, apply_node_actions, EmuHost};

fn main() {
    let solo = StreamId::new(1);
    let co = StreamId::new(2);
    let a = NodeId::new(1); // producer
    let b = NodeId::new(2); // consumer
    let client = ClientId::new(9);

    let mut sim: NetSim<EmuHost> = NetSim::new(7);
    for id in [a, b] {
        let mut node = OverlayNode::new(NodeConfig::new(id));
        node.set_neighbor_rtt(if id == a { b } else { a }, SimDuration::from_millis(20));
        sim.add_host(id, EmuHost::node(node));
    }
    sim.add_duplex(a, b, LinkConfig::backbone(SimDuration::from_millis(10)));
    let chost = client_host_id(client);
    sim.add_host(
        chost,
        EmuHost::client(client, SimTime::ZERO, 15, SimDuration::from_millis(300)),
    );
    sim.add_duplex(b, chost, LinkConfig::backbone(SimDuration::from_millis(5)));

    // Producer hosts both the solo and the co-broadcast streams.
    sim.with_host(a, |h, _| {
        let s = h.as_node_mut().expect("node");
        s.node.register_producer(solo, None);
        s.node.register_producer(co, None);
    });
    // The viewer watches the solo stream.
    sim.with_host(b, |h, ctx| {
        let s = h.as_node_mut().expect("node");
        let mut actions = Vec::new();
        s.node.client_attach(
            ctx.now(),
            client,
            solo,
            Some(Bandwidth::from_mbps(50)),
            Some(&[a, b]),
            &mut actions,
        );
        apply_node_actions(s, ctx, actions);
    });

    // Stream the solo feed for 3 s; at t=3 s the co-broadcast begins and
    // the consumer starts the seamless switch.
    let mut enc_solo = VideoEncoder::new(solo, GopConfig::default(), Bandwidth::from_mbps(2), SimTime::ZERO);
    let mut enc_co = VideoEncoder::new(
        co,
        GopConfig::default(),
        Bandwidth::from_mbps(2),
        SimTime::from_secs(3),
    );
    let mut switched = false;
    let end = SimTime::from_secs(8);
    loop {
        let t_solo = enc_solo.next_capture_time();
        let t_co = enc_co.next_capture_time();
        let next = t_solo.min(t_co);
        if next >= end {
            break;
        }
        sim.run_until(next);
        if !switched && next >= SimTime::from_secs(3) {
            switched = true;
            sim.with_host(b, |h, ctx| {
                let s = h.as_node_mut().expect("node");
                let mut actions = Vec::new();
                s.node
                    .begin_costream_switch(ctx.now(), client, co, Some(&[a, b]), &mut actions);
                apply_node_actions(s, ctx, actions);
            });
            println!("t=3.0s  co-broadcast starts; consumer begins the switch");
        }
        let (enc, stream) = if t_solo <= t_co {
            (&mut enc_solo, solo)
        } else {
            (&mut enc_co, co)
        };
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        let _ = stream;
        sim.with_host(a, |h, ctx| {
            let s = h.as_node_mut().expect("node");
            let actions = s.node.ingest_frame(ctx.now(), &frame, &payload);
            apply_node_actions(s, ctx, actions);
        });
    }
    sim.run_until(end + SimDuration::from_secs(1));

    // Report.
    let consumer = sim.host(b).expect("b").as_node().expect("node");
    for (t, e) in &consumer.events {
        if let NodeEvent::SwitchCompleted { from, to, .. } = e {
            println!("t={:.3}s  switch completed: {from} → {to}", t.as_secs_f64());
        }
    }
    let ctl_stream = consumer.node.client(client).expect("client").stream;
    let stats = consumer.node.client(client).expect("client").stats;
    println!("client now watches {ctl_stream}; switches recorded: {}", stats.switches);

    let qoe = sim
        .remove_host(chost)
        .expect("client host")
        .finish_client(end + SimDuration::from_secs(1))
        .expect("client")
        .1;
    println!(
        "viewer QoE across the switch: startup {:?}, {} stalls, {} frames rendered",
        qoe.startup, qoe.stalls, qoe.frames_rendered
    );
    assert_eq!(ctl_stream, co, "switch must have completed");
}
