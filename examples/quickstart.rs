//! Quickstart: a CDN footprint, the Streaming Brain, and one viewing
//! session end-to-end at packet level.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use livenet::prelude::*;

fn main() {
    // 1. Generate a geo-distributed CDN overlay (12 countries, 60 nodes,
    //    full mesh with realistic intra/inter-national RTTs).
    let geo = GeoTopology::generate(&GeoConfig::paper_scale(1));
    println!(
        "topology: {} nodes, {} directed links, {} last-resort relays",
        geo.topology.node_count(),
        geo.topology.link_count(),
        geo.topology.last_resort_ids().count(),
    );

    // 2. Start the Streaming Brain: it computes the K=3 shortest paths
    //    between every pair under the paper's Eq. 2–3 link weights.
    let nodes: Vec<NodeId> = geo.topology.routable_node_ids().collect();
    let mut brain = StreamingBrain::new(geo.topology.clone(), BrainConfig::default());
    println!(
        "brain: PIB populated with {} candidate paths",
        brain.decision().pib.total_paths()
    );

    // 3. A broadcaster goes live at a producer node; a viewer shows up at
    //    a consumer node on the other side of the world.
    let stream = StreamId::new(42);
    let producer = nodes[0];
    let consumer = *nodes.last().expect("nodes");
    brain.register_stream(stream, producer);
    let lookup = brain
        .path_request(stream, consumer, SimTime::ZERO)
        .expect("path");
    let best = &lookup.paths[0];
    println!(
        "path {producer} → {consumer}: {:?} ({} hops, weight {:.1} ms)",
        best.nodes,
        best.hops(),
        best.weight
    );

    // 4. Replay that path at packet level: real overlay-node state
    //    machines over the discrete-event emulator, 1 % loss on the first
    //    hop to show the fast/slow-path recovery.
    let chain_len = best.hops().max(2);
    let mut cfg = PacketSimConfig::three_node_chain(0.01, 7);
    if chain_len > 2 {
        cfg.links
            .push(livenet::sim::packetsim::ChainLink::healthy(10));
        cfg.viewers[0].node_index = chain_len;
    }
    let report = PacketSim::new(cfg).run();
    let (_, qoe) = report.viewers[0];
    println!(
        "viewer: startup {:?} (fast: {}), {} frames rendered, {} stalls",
        qoe.startup,
        qoe.fast_startup(),
        qoe.frames_rendered,
        qoe.stalls
    );
    println!(
        "slow path: {} holes recovered (mean {:.0} ms), {} retransmissions served",
        report.recovery_latencies_ms.len(),
        report.recovery_latencies_ms.iter().sum::<f64>()
            / report.recovery_latencies_ms.len().max(1) as f64,
        report.node_stats.iter().map(|s| s.rtx_served).sum::<u64>()
    );
}
