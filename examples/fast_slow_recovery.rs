//! The §3 A→B→C example: fast-path forwarding with slow-path recovery.
//!
//! ```sh
//! cargo run --release --example fast_slow_recovery
//! ```

use livenet::prelude::*;

fn main() {
    println!("A → B → C chain, 2% random loss on A→B (paper §3 example)\n");
    for (label, recovery) in [("fast + slow path (LiveNet)", true), ("fast path only", false)] {
        let mut cfg = PacketSimConfig::three_node_chain(0.02, 42);
        if !recovery {
            cfg.nack_retry_limit = 0;
        }
        let report = PacketSim::new(cfg).run();
        let (_, qoe) = report.viewers[0];
        println!("{label}:");
        println!(
            "  frames rendered: {} / ~150   stalls: {}",
            qoe.frames_rendered, qoe.stalls
        );
        println!(
            "  seqs NACKed by B: {} (in {} messages)   retransmissions served by A: {}",
            report.node_stats[1].nacks_sent,
            report.node_stats[1].nack_batches,
            report.node_stats[0].rtx_served
        );
        if !report.recovery_latencies_ms.is_empty() {
            let mean = report.recovery_latencies_ms.iter().sum::<f64>()
                / report.recovery_latencies_ms.len() as f64;
            println!(
                "  {} holes recovered, mean detection→recovery {:.0} ms",
                report.recovery_latencies_ms.len(),
                mean
            );
        }
        println!();
    }
    println!("The slow path recovers every loss within ~(scan/2 + RTT), so the");
    println!("viewer sees the full frame sequence; without it, playback degrades.");
}
