//! The same protocol cores over real UDP sockets (tokio driver).
//!
//! Spins up a 3-node overlay on loopback, streams 2 seconds of video
//! through it, and prints what a real client socket receives.
//!
//! ```sh
//! cargo run --release --example udp_overlay
//! ```

use bytes::Bytes;
use livenet::prelude::*;
use livenet::transport::{NodeCommand, UdpOverlayNode, WallClock};
use livenet::packet::Depacketizer;
use tokio::net::UdpSocket;

#[tokio::main(flavor = "multi_thread", worker_threads = 2)]
async fn main() -> std::io::Result<()> {
    let clock = WallClock::new();
    let stream = StreamId::new(7);
    let ids = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];

    // Spawn three overlay nodes on ephemeral loopback ports.
    let mut handles = Vec::new();
    for &id in &ids {
        let (h, _events, _join) =
            UdpOverlayNode::spawn(NodeConfig::new(id), "127.0.0.1:0".parse().unwrap(), clock)
                .await?;
        println!("node {id} listening on {}", h.addr);
        handles.push(h);
    }
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                handles[i]
                    .send(NodeCommand::AddPeer {
                        node: handles[j].id,
                        addr: handles[j].addr,
                        rtt: SimDuration::from_millis(1),
                    })
                    .await
            .expect("node alive");
            }
        }
    }
    handles[0]
        .send(NodeCommand::RegisterProducer {
            stream,
            ladder: Some(SimulcastLadder::taobao_default(stream)),
        })
        .await
        .expect("node alive");

    // A real client socket subscribes at node 3 via the path A→B→C.
    let client_sock = UdpSocket::bind("127.0.0.1:0").await?;
    println!("client listening on {}", client_sock.local_addr()?);
    handles[2]
        .send(NodeCommand::ClientAttach {
            client: ClientId::new(1),
            stream,
            downlink: Some(Bandwidth::from_mbps(50)),
            path: Some(ids.to_vec()),
            addr: client_sock.local_addr()?,
        })
        .await
        .expect("node alive");

    // Reader task: reassemble frames from the raw datagrams.
    let reader = tokio::spawn(async move {
        let mut depack = Depacketizer::new();
        let (mut packets, mut frames) = (0u32, 0u32);
        let mut buf = vec![0u8; 2048];
        while let Ok(Ok((len, _))) = tokio::time::timeout(
            std::time::Duration::from_millis(700),
            client_sock.recv_from(&mut buf),
        )
        .await
        {
            if let Ok(OverlayMsg::Rtp { packet, .. }) =
                OverlayMsg::decode(Bytes::copy_from_slice(&buf[..len]))
            {
                if let Ok(rtp) = RtpPacket::decode(packet) {
                    packets += 1;
                    depack.push(rtp);
                    frames += depack.drain().len() as u32;
                }
            }
        }
        (packets, frames)
    });

    // Broadcast 2 seconds of 15 fps video in real time.
    let mut encoder = VideoEncoder::new(
        stream,
        GopConfig::default(),
        Bandwidth::from_mbps(1),
        clock.now(),
    );
    for _ in 0..30 {
        let frame = encoder.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        handles[0].send(NodeCommand::Ingest { frame, payload }).await
            .expect("node alive");
        tokio::time::sleep(std::time::Duration::from_millis(66)).await;
    }

    let (packets, frames) = reader.await.expect("reader");
    println!("client received {packets} RTP datagrams, reassembled {frames} frames");
    for h in &handles {
        h.send(NodeCommand::Shutdown).await
            .expect("node alive");
    }
    Ok(())
}
