//! Flash-sale scenario (§2.3's motivating workload): a Double-12-style
//! demand spike, LiveNet vs the Hier baseline on identical sessions.
//!
//! ```sh
//! cargo run --release --example flash_sale
//! ```

use livenet::prelude::*;
use livenet::sim::metrics::summarize;

fn main() {
    // Four days, festival spike on day 2 (~2× demand), with the paper's
    // festival up-scaling of provisioned capacity.
    let cfg = FleetConfigBuilder::paper_scale(1)
        .days(4)
        .festival(vec![2], 2.0)
        .peak_arrivals_per_sec(1.0)
        .build()
        .expect("flash-sale config is valid");
    // Sharded parallel run: same bits as run_serial(), whatever the core
    // count.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = FleetRunner::new(cfg)
        .expect("config already validated")
        .run_parallel(threads);

    println!(
        "simulated {} viewing sessions over 4 days (festival on day 3)",
        report.livenet.len()
    );
    for day in 0..4 {
        let ln: Vec<SessionRecord> = report
            .livenet
            .iter()
            .filter(|s| s.day == day)
            .copied()
            .collect();
        let h: Vec<SessionRecord> = report
            .hier
            .iter()
            .filter(|s| s.day == day)
            .copied()
            .collect();
        let sl = summarize(&ln);
        let sh = summarize(&h);
        println!(
            "day {}: {:>6} sessions | CDN delay {:.0} vs {:.0} ms | 0-stall {:.1}% vs {:.1}% | fast start {:.1}% vs {:.1}%{}",
            day + 1,
            sl.sessions,
            sl.median_cdn_delay_ms,
            sh.median_cdn_delay_ms,
            100.0 * sl.zero_stall_ratio,
            100.0 * sh.zero_stall_ratio,
            100.0 * sl.fast_startup_ratio,
            100.0 * sh.fast_startup_ratio,
            if day == 2 { "   ← flash sale" } else { "" },
        );
    }
    let peaks = &report.daily_peak_throughput;
    println!(
        "peak throughput by day (normalized): {:?}",
        peaks
            .iter()
            .map(|p| format!("{:.2}", p / peaks.iter().cloned().fold(1.0, f64::max)))
            .collect::<Vec<_>>()
    );
    println!(
        "unique overlay paths by day: {:?} (the Brain spreads festival load)",
        report.daily_unique_paths
    );
}
